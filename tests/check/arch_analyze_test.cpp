#include "check/analyze.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "arch/patterns/connection.hpp"
#include "arch/problem.hpp"
#include "domains/epn.hpp"
#include "milp/presolve.hpp"

namespace archex::check {
namespace {

using patterns::CountSide;
using patterns::NConnections;

/// The small EPN exploration plus one contradictory requirement: "no DC->Load
/// connections" against the spec's "each load connects to exactly one DC
/// bus". Same seeding as data/analyze/infeasible_epn.lp.
std::unique_ptr<Problem> infeasible_epn() {
  auto p = domains::epn::make_problem(domains::epn::small_config());
  p->apply(NConnections({"DCBus"}, {"Load"}, 0, milp::Sense::LE,
                        /*only_if_used=*/false, CountSide::kTo));
  p->model().set_objective(p->cost_expression(), milp::ObjectiveSense::Minimize);
  return p;
}

std::unique_ptr<Problem> feasible_epn() {
  auto p = domains::epn::make_problem(domains::epn::small_config());
  p->model().set_objective(p->cost_expression(), milp::ObjectiveSense::Minimize);
  return p;
}

/// The k = 1 regime from epn_test.cpp: closes in well under a second.
domains::epn::EpnConfig tiny_config() {
  domains::epn::EpnConfig cfg = domains::epn::small_config();
  cfg.loads_per_side = 2;
  cfg.critical_threshold = 5e-3;
  cfg.sheddable_threshold = 5e-2;
  return cfg;
}

TEST(ArchAnalyzeTest, IisIsFullyAttributedToPatterns) {
  const auto p = infeasible_epn();
  const ArchAnalysisReport r = analyze(*p);
  ASSERT_TRUE(r.base.proved_infeasible());
  ASSERT_TRUE(r.base.iis.infeasible);
  ASSERT_FALSE(r.base.iis.rows.empty());
  ASSERT_EQ(r.iis_origins.size(), r.base.iis.rows.size());
  EXPECT_DOUBLE_EQ(r.iis_attribution, 1.0);
  for (const std::string& origin : r.iis_origins) {
    EXPECT_NE(origin, "unattributed");
  }
  // The seeded conflict is the two count constraints on the same load.
  EXPECT_LE(r.base.iis.rows.size(), 2u);
  bool saw_exactly = false, saw_at_most = false;
  for (const std::string& origin : r.iis_origins) {
    if (origin.find("exactly_n_connections") != std::string::npos) saw_exactly = true;
    if (origin.find("at_most_n_connections") != std::string::npos) saw_at_most = true;
  }
  EXPECT_TRUE(saw_exactly);
  EXPECT_TRUE(saw_at_most);
}

TEST(ArchAnalyzeTest, BlocksRecoverPatternStructure) {
  const auto p = feasible_epn();
  const ArchAnalysisReport r = analyze(*p);
  ASSERT_GT(r.blocks.size(), 1u);
  std::size_t total_rows = 0;
  for (const OriginBlock& b : r.blocks) {
    EXPECT_FALSE(b.origin.empty());
    EXPECT_GT(b.rows, 0u);
    total_rows += b.rows;
  }
  // Every row belongs to exactly one origin block.
  EXPECT_EQ(total_rows, p->model().num_constraints());
  // Blocks are rows-descending and coupled through shared columns.
  for (std::size_t i = 1; i < r.blocks.size(); ++i) {
    EXPECT_GE(r.blocks[i - 1].rows, r.blocks[i].rows);
  }
  EXPECT_GT(r.coupling_cols, 0u);
}

TEST(ArchAnalyzeTest, ExplainInfeasibilityNamesTheConflict) {
  const auto p = infeasible_epn();
  const ArchAnalysisReport r = analyze(*p);
  const std::string text = r.explain_infeasibility();
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("at_most_n_connections"), std::string::npos);
  EXPECT_NE(text.find("exactly_n_connections"), std::string::npos);
}

TEST(ArchAnalyzeTest, ExplainIsEmptyWhenFeasible) {
  const auto p = feasible_epn();
  const ArchAnalysisReport r = analyze(*p);
  EXPECT_FALSE(r.base.proved_infeasible());
  EXPECT_TRUE(r.explain_infeasibility().empty());
}

TEST(ArchAnalyzeTest, DiagnoserFillsExplorationResult) {
  const auto p = infeasible_epn();
  EXPECT_FALSE(p->has_infeasibility_diagnoser());
  enable_infeasibility_diagnosis(*p);
  ASSERT_TRUE(p->has_infeasibility_diagnoser());
  const ExplorationResult res = p->solve();
  ASSERT_EQ(res.solution.status, milp::SolveStatus::Infeasible);
  ASSERT_FALSE(res.infeasibility_explanation.empty());
  EXPECT_NE(res.infeasibility_explanation.find("at_most_n_connections"),
            std::string::npos);
}

TEST(ArchAnalyzeTest, DiagnoserStaysQuietOnFeasibleSolve) {
  // The tiny instance solves to optimality in well under the limit; the
  // diagnoser must not fire on the feasible path.
  auto p = domains::epn::make_problem(tiny_config());
  enable_infeasibility_diagnosis(*p);
  milp::MilpOptions o;
  o.time_limit_s = 30;
  const ExplorationResult res = p->solve(o);
  ASSERT_TRUE(res.feasible()) << milp::to_string(res.solution.status);
  EXPECT_TRUE(res.infeasibility_explanation.empty());
}

TEST(ArchAnalyzeTest, EpnModelHasStrengthenableBounds) {
  // Acceptance: the presolve strengthen step (on by default) proves >0
  // tightened bounds on a real EPN exploration model.
  const auto p = feasible_epn();
  const milp::PresolveResult pre = milp::presolve(p->model());
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GT(pre.strengthen_tightened, 0u);
}

TEST(ArchAnalyzeTest, ArchReportPrintsOriginsAndBlocks) {
  const auto p = infeasible_epn();
  const ArchAnalysisReport r = analyze(*p);
  std::ostringstream os;
  r.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("attribution"), std::string::npos);
  EXPECT_NE(text.find("at_most_n_connections"), std::string::npos);
}

}  // namespace
}  // namespace archex::check
