#include "check/arch_lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/flow.hpp"
#include "arch/patterns/general.hpp"
#include "arch/patterns/timing.hpp"
#include "arch/problem.hpp"
#include "domains/epn.hpp"
#include "domains/rpl.hpp"

namespace archex::check {
namespace {

using patterns::AtLeastNComponents;
using patterns::CountSide;
using patterns::FlowBalance;
using patterns::MaxCycleTime;
using patterns::NConnections;
using patterns::NoOverloads;
using patterns::SinkDemand;
using patterns::SourceRate;

/// The quickstart sensor-processing pipeline (examples/quickstart.cpp),
/// reproduced so the shipped tutorial model is covered by the lint gate.
Problem quickstart_problem() {
  Library lib;
  lib.set_edge_cost(5.0);
  lib.add({"SenStd", "Sensor", "", {}, {{attr::kCost, 10}, {attr::kFlowRate, 4}, {attr::kDelay, 1}}});
  lib.add({"ProcSlow", "Proc", "eco", {}, {{attr::kCost, 40}, {attr::kThroughput, 6}, {attr::kDelay, 5}}});
  lib.add({"ProcFast", "Proc", "turbo", {}, {{attr::kCost, 90}, {attr::kThroughput, 16}, {attr::kDelay, 2}}});
  lib.add({"GwStd", "Gateway", "", {}, {{attr::kCost, 25}, {attr::kDelay, 1}}});

  ArchTemplate tmpl;
  tmpl.add_nodes(3, "Sen", "Sensor");
  tmpl.add_nodes(3, "Proc", "Proc");
  tmpl.add_node({"Gw", "Gateway", "", {}, {}});
  tmpl.allow_connection(NodeFilter::of_type("Sensor"), NodeFilter::of_type("Proc"));
  tmpl.allow_connection(NodeFilter::of_type("Proc"), NodeFilter::of_type("Gateway"));

  Problem problem(lib, tmpl);
  problem.set_functional_flow({"Sensor", "Proc", "Gateway"});
  problem.apply(AtLeastNComponents(NodeFilter::of_type("Sensor"), 3));
  problem.apply(NConnections(NodeFilter::of_type("Sensor"), NodeFilter::of_type("Proc"), 1,
                             milp::Sense::EQ, false, CountSide::kFrom));
  problem.apply(NConnections(NodeFilter::of_type("Proc"), NodeFilter::of_type("Gateway"), 1,
                             milp::Sense::GE, true, CountSide::kFrom));
  problem.flow("readings", 16.0);
  problem.apply(SourceRate("readings", NodeFilter::of_type("Sensor"), 4.0));
  problem.apply(FlowBalance(NodeFilter::of_type("Proc"), {"readings"}));
  problem.apply(SinkDemand("readings", NodeFilter::of_type("Gateway"), 12.0));
  problem.apply(NoOverloads(NodeFilter::of_type("Proc"), {{"readings"}}));
  problem.apply(MaxCycleTime(NodeFilter::of_type("Gateway"), 8.0));
  problem.add_symmetry_breaking();
  return problem;
}

TEST(ArchLintTest, QuickstartModelLintsCleanAtErrorSeverity) {
  const Problem p = quickstart_problem();
  const ArchLintReport r = lint(p);
  EXPECT_TRUE(r.clean(Severity::Error)) << [&] {
    std::ostringstream os;
    r.print(os);
    return os.str();
  }();
  EXPECT_EQ(r.diagnostics.size(), r.base.diagnostics.size());
}

TEST(ArchLintTest, EpnSmallConfigLintsCleanAtErrorSeverity) {
  const auto p = domains::epn::make_problem(domains::epn::small_config());
  const ArchLintReport r = lint(*p);
  EXPECT_TRUE(r.clean(Severity::Error)) << [&] {
    std::ostringstream os;
    r.print(os);
    return os.str();
  }();
}

TEST(ArchLintTest, RplDefaultConfigLintsCleanAtErrorSeverity) {
  const auto p = domains::rpl::make_problem();
  const ArchLintReport r = lint(*p);
  EXPECT_TRUE(r.clean(Severity::Error)) << [&] {
    std::ostringstream os;
    r.print(os);
    return os.str();
  }();
}

TEST(ArchLintTest, RowProvenanceNamesStructuralFlowAndPatternOrigins) {
  const Problem p = quickstart_problem();
  const std::size_t rows = p.model().num_constraints();
  ASSERT_GT(rows, 0u);
  EXPECT_EQ(p.origin_of_row(0), "structural");
  bool saw_flow = false, saw_pattern = false, saw_symmetry = false;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::string& o = p.origin_of_row(i);
    EXPECT_NE(o, "unattributed") << "row " << i << " lost its provenance";
    if (o == "flow(readings)") saw_flow = true;
    if (o.find("n_connections") != std::string::npos) saw_pattern = true;
    if (o == "symmetry-breaking") saw_symmetry = true;
  }
  EXPECT_TRUE(saw_flow);
  EXPECT_TRUE(saw_pattern);
  EXPECT_TRUE(saw_symmetry);
  EXPECT_EQ(p.origin_of_row(rows + 100), "unattributed");
}

TEST(ArchLintTest, FindingsAreAttributedToTheirPattern) {
  // Seed a defect through the pattern pipeline: demanding >= 0 connections
  // is vacuously true, so the pattern emits always-inactive rows that the
  // redundant-row rule must flag — attributed to that pattern instance.
  Problem p = quickstart_problem();
  p.apply(NConnections(NodeFilter::of_type("Sensor"), NodeFilter::of_type("Proc"), 0,
                       milp::Sense::GE, false, CountSide::kFrom));
  LintOptions opts;
  const ArchLintReport r = lint(p, opts);
  const auto hit = std::find_if(
      r.diagnostics.begin(), r.diagnostics.end(), [](const ArchDiagnostic& d) {
        return d.diag.rule == Rule::RedundantRow &&
               d.origin.find("at_least_n_connections") != std::string::npos &&
               d.origin.find(", 0") != std::string::npos;
      });
  ASSERT_NE(hit, r.diagnostics.end());
  EXPECT_FALSE(hit->constraint.empty());
  EXPECT_NE(hit->to_string().find(hit->origin), std::string::npos);
}

TEST(ArchLintTest, PrintIncludesOriginAttribution) {
  Problem p = quickstart_problem();
  p.model().add_constraint(milp::LinExpr{}, milp::Sense::LE, 1.0, "smuggled");
  const ArchLintReport r = lint(p);
  // A row added behind the Problem's back has no recorded origin.
  const auto hit = std::find_if(
      r.diagnostics.begin(), r.diagnostics.end(),
      [](const ArchDiagnostic& d) { return d.diag.rule == Rule::EmptyRow; });
  ASSERT_NE(hit, r.diagnostics.end());
  EXPECT_EQ(hit->origin, "unattributed");
  std::ostringstream os;
  r.print(os);
  EXPECT_NE(os.str().find("unattributed"), std::string::npos);
}

}  // namespace
}  // namespace archex::check
