#include "check/certify.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "milp/branch_bound.hpp"
#include "milp/model.hpp"
#include "milp/simplex.hpp"

namespace archex::check {
namespace {

using milp::kInf;
using milp::LinExpr;
using milp::Model;
using milp::ObjectiveSense;
using milp::Sense;
using milp::SimplexSolver;
using milp::Solution;
using milp::SolveStatus;
using milp::VarId;

/// min x + y  s.t.  x + y >= 3, x - y <= 1, x in [0,5], y integer in [0,4].
Model small_milp() {
  Model m;
  const VarId x = m.add_continuous(0.0, 5.0, "x");
  const VarId y = m.add_integer(0.0, 4.0, "y");
  m.add_constraint(1.0 * x + 1.0 * y, Sense::GE, 3.0, "demand");
  m.add_constraint(1.0 * x - 1.0 * y, Sense::LE, 1.0, "skew");
  m.set_objective(1.0 * x + 1.0 * y, ObjectiveSense::Minimize);
  return m;
}

TEST(CertifyTest, AcceptsTrueOptimum) {
  const Model m = small_milp();
  const std::vector<double> x = {1.0, 2.0};  // feasible, objective 3
  const Certificate cert = certify(m, x, 3.0);
  EXPECT_TRUE(cert.checked);
  EXPECT_TRUE(cert.ok());
  EXPECT_TRUE(cert.rows_ok);
  EXPECT_TRUE(cert.bounds_ok);
  EXPECT_TRUE(cert.integrality_ok);
  EXPECT_TRUE(cert.objective_ok);
  EXPECT_FALSE(cert.duals_checked);
  EXPECT_TRUE(cert.worst_rows.empty());
  EXPECT_NE(cert.summary().find("ok"), std::string::npos);
}

TEST(CertifyTest, SizeMismatchStaysUnchecked) {
  const Model m = small_milp();
  const Certificate cert = certify(m, {1.0}, 3.0);
  EXPECT_FALSE(cert.checked);
  EXPECT_FALSE(cert.ok());
  EXPECT_NE(cert.summary().find("not checked"), std::string::npos);
}

TEST(CertifyTest, RejectsRowViolationJustPastTolerance) {
  const Model m = small_milp();
  // demand row x + y >= 3 missed by 1e-4 (scaled residual 2.5e-5): fails at
  // the 1e-6 default, passes with the tolerance opened up past it.
  const std::vector<double> x = {0.9999, 2.0};
  const Certificate tight = certify(m, x, 2.9999);
  EXPECT_TRUE(tight.checked);
  EXPECT_FALSE(tight.rows_ok);
  EXPECT_FALSE(tight.ok());
  ASSERT_FALSE(tight.worst_rows.empty());
  EXPECT_EQ(tight.worst_rows.front().row, 0);
  EXPECT_GT(tight.worst_rows.front().violation, 1e-6);
  EXPECT_NE(tight.summary().find("FAIL"), std::string::npos);

  CertifyOptions loose;
  loose.feas_tol = 1e-3;
  EXPECT_TRUE(certify(m, x, 2.9999, loose).ok());
}

TEST(CertifyTest, RejectsWrongObjectiveClaim) {
  const Model m = small_milp();
  const std::vector<double> x = {1.0, 2.0};
  const Certificate cert = certify(m, x, 2.0);  // point is fine, claim is not
  EXPECT_TRUE(cert.rows_ok);
  EXPECT_FALSE(cert.objective_ok);
  EXPECT_FALSE(cert.ok());
  EXPECT_GT(cert.objective_error, 0.1);
}

TEST(CertifyTest, RejectsBoundAndIntegralityViolations) {
  const Model m = small_milp();
  const Certificate bound = certify(m, {6.0, 0.0}, 6.0);  // x above ub=5
  EXPECT_FALSE(bound.bounds_ok);
  EXPECT_FALSE(bound.ok());

  const Certificate frac = certify(m, {1.5, 1.5}, 3.0);  // y fractional
  EXPECT_FALSE(frac.integrality_ok);
  EXPECT_GT(frac.max_int_violation, 0.4);
  EXPECT_FALSE(frac.ok());
}

TEST(CertifyTest, SolutionOverloadRequiresIncumbent) {
  const Model m = small_milp();
  Solution none;
  EXPECT_FALSE(certify(m, none).checked);

  Solution sol = solve_milp(m);
  ASSERT_TRUE(sol.has_incumbent);
  const Certificate cert = certify(m, sol);
  EXPECT_TRUE(cert.checked);
  EXPECT_TRUE(cert.ok());
}

TEST(CertifyTest, SolveRecordsCertificateMetricsByDefault) {
  const Model m = small_milp();
  milp::MilpOptions opts;
  EXPECT_TRUE(opts.certify);  // ISSUE: certification is on by default
  const Solution sol = solve_milp(m, opts);
  ASSERT_TRUE(sol.has_incumbent);
  ASSERT_TRUE(sol.metrics.count("check.certify.ok"));
  EXPECT_EQ(sol.metrics.at("check.certify.ok"), 1.0);
  EXPECT_LE(sol.metrics.at("check.certify.max_row_violation"), 1e-6);
  EXPECT_LE(sol.metrics.at("check.certify.objective_error"), 1e-6);

  milp::MilpOptions off;
  off.certify = false;
  const Solution bare = solve_milp(m, off);
  EXPECT_FALSE(bare.metrics.count("check.certify.ok"));
}

TEST(CertifyTest, LpDualsAcceptedAtOptimum) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (known duals 0, 3/2, 1).
  Model m;
  const VarId x = m.add_continuous(0.0, kInf, "x");
  const VarId y = m.add_continuous(0.0, kInf, "y");
  m.add_constraint(LinExpr(x), Sense::LE, 4.0, "r1");
  m.add_constraint(2.0 * y, Sense::LE, 12.0, "r2");
  m.add_constraint(3.0 * x + 2.0 * y, Sense::LE, 18.0, "r3");
  m.set_objective(3.0 * x + 5.0 * y, ObjectiveSense::Maximize);
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  const std::vector<double> px = lp.primal_solution();
  const std::vector<double> duals = lp.dual_values();
  const std::vector<double> rc = lp.reduced_costs();

  // objective_value() is in minimize sense; the claim is in model sense.
  const Certificate cert = certify_lp(m, px, -lp.objective_value(), duals, rc);
  EXPECT_TRUE(cert.checked);
  EXPECT_TRUE(cert.duals_checked);
  EXPECT_TRUE(cert.dual_feasible);
  EXPECT_TRUE(cert.complementary);
  EXPECT_TRUE(cert.ok());
  EXPECT_LE(cert.max_dual_violation, 1e-6);
  EXPECT_NE(cert.summary().find("dual"), std::string::npos);
}

TEST(CertifyTest, LpRejectsCorruptedDuals) {
  Model m;
  const VarId x = m.add_continuous(0.0, kInf, "x");
  const VarId y = m.add_continuous(0.0, kInf, "y");
  m.add_constraint(LinExpr(x), Sense::LE, 4.0, "r1");
  m.add_constraint(2.0 * y, Sense::LE, 12.0, "r2");
  m.add_constraint(3.0 * x + 2.0 * y, Sense::LE, 18.0, "r3");
  m.set_objective(3.0 * x + 5.0 * y, ObjectiveSense::Maximize);
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  const std::vector<double> px = lp.primal_solution();
  std::vector<double> duals = lp.dual_values();
  const std::vector<double> rc = lp.reduced_costs();

  // A pricing bug cannot certify itself: flipping the sign of an active
  // row's dual breaks both the reduced-cost cross-check and the row sign.
  duals[2] = -duals[2];
  const Certificate cert = certify_lp(m, px, -lp.objective_value(), duals, rc);
  EXPECT_TRUE(cert.duals_checked);
  EXPECT_FALSE(cert.dual_feasible);
  EXPECT_FALSE(cert.ok());
}

TEST(CertifyTest, LpRejectsNonzeroDualOnSlackRow) {
  // min x s.t. x >= 1, x <= 9: the upper row is slack at the optimum, so a
  // fabricated nonzero dual on it must break complementary slackness.
  Model m;
  const VarId x = m.add_continuous(0.0, kInf, "x");
  m.add_constraint(LinExpr(x), Sense::GE, 1.0, "lo");
  m.add_constraint(LinExpr(x), Sense::LE, 9.0, "hi");
  m.set_objective(1.0 * x, ObjectiveSense::Minimize);
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  const std::vector<double> px = lp.primal_solution();
  std::vector<double> duals = lp.dual_values();
  const std::vector<double> rc = lp.reduced_costs();
  ASSERT_EQ(duals.size(), 2u);

  duals[1] = -0.5;  // sign-legal for a LE row in min sense, but the row is slack
  const Certificate cert = certify_lp(m, px, lp.objective_value(), duals, rc);
  EXPECT_TRUE(cert.duals_checked);
  EXPECT_FALSE(cert.complementary);
  EXPECT_FALSE(cert.ok());
}

TEST(CertifyTest, LpSizeMismatchSkipsDualLeg) {
  const Model m = small_milp();
  const std::vector<double> x = {1.0, 2.0};
  const Certificate cert = certify_lp(m, x, 3.0, {0.0}, {0.0, 0.0});
  EXPECT_TRUE(cert.checked);       // primal leg still runs
  EXPECT_FALSE(cert.duals_checked);  // wrong dual vector length: no verdict
  EXPECT_TRUE(cert.ok());
}

}  // namespace
}  // namespace archex::check
