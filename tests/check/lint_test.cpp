#include "check/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "milp/model.hpp"

namespace archex::check {
namespace {

using milp::kInf;
using milp::LinExpr;
using milp::Model;
using milp::ObjectiveSense;
using milp::Sense;
using milp::VarId;

/// True when the report contains at least one finding of `rule` at `sev`.
bool has(const LintReport& r, Rule rule, Severity sev) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule == rule && d.severity == sev; });
}

bool has_rule(const LintReport& r, Rule rule) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

/// A well-formed two-variable model none of the rules should fire on.
Model clean_model() {
  Model m;
  const VarId x = m.add_continuous(0.0, 10.0, "x");
  const VarId y = m.add_binary("y");
  m.add_constraint(1.0 * x + 3.0 * y, Sense::LE, 8.0, "cap");
  m.add_constraint(1.0 * x - 1.0 * y, Sense::GE, 0.5, "link");
  m.set_objective(1.0 * x + 2.0 * y, ObjectiveSense::Minimize);
  return m;
}

TEST(LintTest, CleanModelHasNoFindings) {
  const LintReport r = lint(clean_model());
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_TRUE(r.clean(Severity::Info));
  EXPECT_EQ(r.num_errors, 0u);
  EXPECT_EQ(r.num_warnings, 0u);
  EXPECT_EQ(r.num_infos, 0u);
}

TEST(LintTest, EmptyRowVacuousIsWarning) {
  Model m = clean_model();
  m.add_constraint(LinExpr{}, Sense::LE, 5.0, "vacuous");
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::EmptyRow, Severity::Warning));
  EXPECT_TRUE(r.clean(Severity::Error));
}

TEST(LintTest, EmptyRowUnsatisfiableIsError) {
  Model m = clean_model();
  m.add_constraint(LinExpr{}, Sense::GE, 1.0, "impossible");  // 0 >= 1
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::EmptyRow, Severity::Error));
  EXPECT_FALSE(r.clean(Severity::Error));
}

TEST(LintTest, CancelledTermsCountAsEmptyRow) {
  // LinExpr normalization drops exact cancellations, which is precisely the
  // "pattern cancelled all coefficients" defect the rule is after.
  Model m = clean_model();
  LinExpr e = 2.0 * VarId{0} - 2.0 * VarId{0};
  m.add_constraint(std::move(e), Sense::LE, 1.0, "cancelled");
  const LintReport r = lint(m);
  EXPECT_TRUE(has_rule(r, Rule::EmptyRow));
}

TEST(LintTest, DuplicateRowExactAndDominated) {
  Model m = clean_model();
  const LinExpr e = 1.0 * VarId{0} + 3.0 * VarId{1};
  m.add_constraint(e, Sense::LE, 8.0, "cap_again");   // duplicates "cap"
  const LintReport dup = lint(m);
  EXPECT_TRUE(has(dup, Rule::DuplicateRow, Severity::Warning));

  Model m2 = clean_model();
  m2.add_constraint(e, Sense::LE, 100.0, "cap_loose");  // dominated by "cap"
  const LintReport dom = lint(m2);
  EXPECT_TRUE(has(dom, Rule::DuplicateRow, Severity::Warning));
}

TEST(LintTest, RangePairIsNotADuplicate) {
  // l <= a.x <= u written as two rows over identical terms must stay silent.
  Model m = clean_model();
  m.add_constraint(1.0 * VarId{0} + 3.0 * VarId{1}, Sense::GE, 1.0, "floor");
  const LintReport r = lint(m);
  EXPECT_FALSE(has_rule(r, Rule::DuplicateRow));
  EXPECT_FALSE(has_rule(r, Rule::ContradictoryRows));
}

TEST(LintTest, ContradictoryRowsOverSameTerms) {
  Model m = clean_model();
  const LinExpr e = 1.0 * VarId{0} + 3.0 * VarId{1};
  m.add_constraint(e, Sense::GE, 9.0, "floor");  // with "cap" (<= 8): empty
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::ContradictoryRows, Severity::Error));
}

TEST(LintTest, ContradictoryEqualityPins) {
  Model m = clean_model();
  const LinExpr e = 1.0 * VarId{0};
  m.add_constraint(e, Sense::EQ, 1.0, "pin1");
  m.add_constraint(e, Sense::EQ, 2.0, "pin2");
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::ContradictoryRows, Severity::Error));
}

TEST(LintTest, InfeasibleRowAgainstBounds) {
  Model m;
  const VarId x = m.add_continuous(0.0, 1.0, "x");
  const VarId y = m.add_continuous(0.0, 1.0, "y");
  m.add_constraint(1.0 * x + 1.0 * y, Sense::GE, 3.0, "too_much");  // max act 2
  m.set_objective(1.0 * x + 1.0 * y);
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::InfeasibleRow, Severity::Error));
}

TEST(LintTest, RedundantRowIsInfoAndSuppressible) {
  Model m;
  const VarId x = m.add_continuous(0.0, 1.0, "x");
  const VarId y = m.add_continuous(0.0, 1.0, "y");
  m.add_constraint(1.0 * x + 1.0 * y, Sense::LE, 5.0, "never_active");  // max 2
  m.add_constraint(1.0 * x - 1.0 * y, Sense::LE, 0.5, "real");
  m.set_objective(1.0 * x + 1.0 * y);
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::RedundantRow, Severity::Info));
  EXPECT_TRUE(r.clean(Severity::Warning));

  LintOptions quiet;
  quiet.report_info = false;
  const LintReport q = lint(m, quiet);
  EXPECT_FALSE(has_rule(q, Rule::RedundantRow));
  EXPECT_EQ(q.num_infos, 0u);
}

TEST(LintTest, InfiniteBoundsBlockRedundancyProof) {
  // With a free variable the activity interval is (-inf, +inf): the row is
  // neither provably infeasible nor provably redundant.
  Model m;
  const VarId x = m.add_continuous(-kInf, kInf, "x");
  m.add_constraint(1.0 * x, Sense::LE, 5.0, "c");
  m.set_objective(1.0 * x);
  const LintReport r = lint(m);
  EXPECT_FALSE(has_rule(r, Rule::InfeasibleRow));
  EXPECT_FALSE(has_rule(r, Rule::RedundantRow));
}

TEST(LintTest, CoefficientRangeWarnsBeyondRatio) {
  Model m;
  const VarId x = m.add_continuous(0.0, 1.0, "x");
  const VarId y = m.add_continuous(0.0, 1.0, "y");
  m.add_constraint(1e-6 * x + 1e6 * y, Sense::LE, 1.0, "wild");  // ratio 1e12
  m.set_objective(1.0 * x);
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::CoefficientRange, Severity::Warning));

  LintOptions loose;
  loose.coef_range_ratio = 1e13;
  EXPECT_FALSE(has_rule(lint(m, loose), Rule::CoefficientRange));
}

TEST(LintTest, BigMOnIntegerColumnWarns) {
  Model m;
  const VarId x = m.add_continuous(0.0, 100.0, "x");
  const VarId b = m.add_binary("b");
  m.add_constraint(1.0 * x - 1e8 * b, Sense::LE, 0.0, "indicator");
  m.set_objective(1.0 * x);
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::BigM, Severity::Warning));

  // The same coefficient on a *continuous* column is range trouble at most,
  // not big-M.
  Model m2;
  const VarId u = m2.add_continuous(0.0, 100.0, "u");
  const VarId v = m2.add_continuous(0.0, 1.0, "v");
  m2.add_constraint(1.0 * u - 1e8 * v, Sense::LE, 0.0, "scaled");
  m2.set_objective(1.0 * u);
  EXPECT_FALSE(has_rule(lint(m2), Rule::BigM));
}

TEST(LintTest, ContradictoryBoundsIsError) {
  // add_var rejects lb > ub up front; crossed bounds arise from later
  // mutation (LP-file bounds sections, bound tightening), so mimic that.
  Model m = clean_model();
  const VarId z = m.add_continuous(0.0, 1.0, "z");
  m.var(z).lb = 2.0;
  m.add_constraint(1.0 * z, Sense::LE, 5.0, "touch_z");
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::ContradictoryBounds, Severity::Error));
}

TEST(LintTest, EmptyIntegerDomainIsError) {
  Model m = clean_model();
  const VarId k = m.add_integer(0.4, 0.6, "k");  // no integer in [0.4, 0.6]
  m.add_constraint(1.0 * k, Sense::LE, 5.0, "touch_k");
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::EmptyIntegerDomain, Severity::Error));
  // The narrower fractional-bounds warning must not also fire for it.
  EXPECT_FALSE(has_rule(r, Rule::FractionalIntBounds));
}

TEST(LintTest, FractionalIntegerBoundsWarn) {
  Model m = clean_model();
  const VarId k = m.add_integer(0.5, 3.5, "k");
  m.add_constraint(1.0 * k, Sense::LE, 5.0, "touch_k");
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::FractionalIntBounds, Severity::Warning));

  Model m2 = clean_model();
  const VarId j = m2.add_integer(0.0, 3.0, "j");
  m2.add_constraint(1.0 * j, Sense::LE, 5.0, "touch_j");
  EXPECT_FALSE(has_rule(lint(m2), Rule::FractionalIntBounds));
}

TEST(LintTest, FixedFreeAndUnreferencedColumns) {
  Model m = clean_model();
  const VarId fx = m.add_continuous(4.0, 4.0, "fixed");
  const VarId fr = m.add_continuous(-kInf, kInf, "free");
  m.add_continuous(0.0, 1.0, "orphan");  // in no row, not in objective
  m.add_constraint(1.0 * fx + 1.0 * fr, Sense::LE, 10.0, "touch");
  const LintReport r = lint(m);
  EXPECT_TRUE(has(r, Rule::FixedColumn, Severity::Info));
  EXPECT_TRUE(has(r, Rule::FreeColumn, Severity::Info));
  EXPECT_TRUE(has(r, Rule::UnreferencedColumn, Severity::Warning));
}

TEST(LintTest, ObjectiveOnlyColumnStillWarnsUnreferenced) {
  Model m = clean_model();
  const VarId loose = m.add_continuous(0.0, 1.0, "loose");
  m.set_objective(1.0 * VarId{0} + 1.0 * loose, ObjectiveSense::Minimize);
  const LintReport r = lint(m);
  const auto found =
      std::find_if(r.diagnostics.begin(), r.diagnostics.end(), [&](const Diagnostic& d) {
        return d.rule == Rule::UnreferencedColumn && d.col == loose.index;
      });
  ASSERT_NE(found, r.diagnostics.end());
  EXPECT_NE(found->message.find("objective only"), std::string::npos);
}

TEST(LintTest, ReportIsSortedAndTalliesMatch) {
  Model m;
  const VarId x = m.add_continuous(0.0, 1.0, "x");
  const VarId bad = m.add_continuous(0.0, 2.0, "bad");
  m.var(bad).lb = 3.0;  // crossed bounds: error on col 1
  m.add_constraint(1.0 * x, Sense::GE, 9.0, "hot");  // infeasible, row 0
  m.add_constraint(LinExpr{}, Sense::LE, 1.0, "vac");  // warning, row 1
  m.set_objective(1.0 * x);
  const LintReport r = lint(m);
  EXPECT_TRUE(std::is_sorted(r.diagnostics.begin(), r.diagnostics.end(),
                             [](const Diagnostic& a, const Diagnostic& b) {
                               if (a.row != b.row) return a.row < b.row;
                               return a.col < b.col;
                             }));
  std::size_t e = 0, w = 0, i = 0;
  for (const Diagnostic& d : r.diagnostics) {
    e += d.severity == Severity::Error;
    w += d.severity == Severity::Warning;
    i += d.severity == Severity::Info;
  }
  EXPECT_EQ(r.num_errors, e);
  EXPECT_EQ(r.num_warnings, w);
  EXPECT_EQ(r.num_infos, i);
  EXPECT_EQ(r.at_least(Severity::Warning).size(), e + w);

  std::ostringstream os;
  r.print(os);
  EXPECT_NE(os.str().find("error"), std::string::npos);
  for (const Diagnostic& d : r.diagnostics) {
    EXPECT_NE(os.str().find(to_string(d.rule)), std::string::npos);
  }
}

// --- regressions from the duplicate-row / big-M audit -----------------------

TEST(LintTest, NearEqualCoefficientsAreNotDuplicates) {
  // Coefficients differing past the 6th significant digit used to collide
  // under the default stream precision of the grouping key, producing false
  // DuplicateRow/ContradictoryRows findings (fixed by hexfloat keys).
  Model m;
  const VarId x = m.add_continuous(0.0, 10.0, "x");
  const VarId y = m.add_continuous(0.0, 10.0, "y");
  m.add_constraint(1.0 * x + 1.0 * y, Sense::LE, 8.0, "cap");
  m.add_constraint(1.0000001 * x + 1.0 * y, Sense::LE, 8.0, "cap_tilted");
  m.set_objective(1.0 * x + 1.0 * y);
  const LintReport r = lint(m);
  EXPECT_FALSE(has_rule(r, Rule::DuplicateRow));
  EXPECT_FALSE(has_rule(r, Rule::ContradictoryRows));

  // And crucially: two such rows with *crossed* rhs must not be reported as
  // contradictory either — they are different hyperplanes.
  Model m2;
  const VarId u = m2.add_continuous(0.0, kInf, "u");
  m2.add_constraint(1.0 * u, Sense::LE, 3.0, "cap");
  m2.add_constraint(1.0000001 * u, Sense::GE, 5.0, "floor");
  m2.set_objective(1.0 * u);
  EXPECT_FALSE(has_rule(lint(m2), Rule::ContradictoryRows));
}

TEST(LintTest, ExactDuplicatesStillCaughtAfterPrecisionFix) {
  Model m;
  const VarId x = m.add_continuous(0.0, 10.0, "x");
  const VarId y = m.add_continuous(0.0, 10.0, "y");
  const LinExpr e = 1.25 * x + 2.5 * y;
  m.add_constraint(e, Sense::LE, 8.0, "cap");
  m.add_constraint(e, Sense::LE, 8.0, "cap_again");
  m.set_objective(1.0 * x);
  EXPECT_TRUE(has(lint(m), Rule::DuplicateRow, Severity::Warning));
}

TEST(LintTest, RangedRowsWithCrossedBoundsAreContradictory) {
  // A ranged row written as LE + GE pair is legitimate (RangePairIsNotADuplicate)
  // — but only while the range is non-empty. l > u must be an error.
  Model m;
  const VarId x = m.add_continuous(0.0, 10.0, "x");
  const VarId y = m.add_continuous(0.0, 10.0, "y");
  const LinExpr e = 1.0 * x + 1.0 * y;
  m.add_constraint(e, Sense::LE, 3.0, "upper");
  m.add_constraint(e, Sense::GE, 5.0, "lower");  // empty range [5, 3]
  m.set_objective(1.0 * x);
  EXPECT_TRUE(has(lint(m), Rule::ContradictoryRows, Severity::Error));
}

TEST(LintTest, BigMWarnsOnMaximizeModelsToo) {
  // The big-M heuristic keys on matrix coefficients, so the objective sense
  // must not matter (the audit checked Maximize models are not exempt).
  Model m;
  const VarId x = m.add_continuous(0.0, 100.0, "x");
  const VarId b = m.add_binary("b");
  m.add_constraint(1.0 * x - 1e8 * b, Sense::LE, 0.0, "indicator");
  m.set_objective(1.0 * x, ObjectiveSense::Maximize);
  EXPECT_TRUE(has(lint(m), Rule::BigM, Severity::Warning));
}

}  // namespace
}  // namespace archex::check
