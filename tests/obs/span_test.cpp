/// Unit tests for the hierarchical span profiler (obs/span.hpp): RAII
/// nesting, cross-worker merge ordering, overflow accounting (including the
/// milp.spans_dropped metric fed by solve_milp), the zero-cost disabled
/// path, the Chrome trace-event export, the Prometheus exposition, and the
/// per-pattern cost-attribution report on a real EPN encode.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "arch/perf_report.hpp"
#include "domains/epn.hpp"
#include "milp/branch_bound.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace archex::obs {
namespace {

TEST(SpanTest, NullAndDisabledBuffersAreNoOps) {
  {
    ScopedSpan null_span(nullptr, span_id(SpanName::Ftran));
    null_span.stop();  // must not crash
  }
  SpanBuffer unarmed;  // never init()ed: enabled() is false
  EXPECT_FALSE(unarmed.enabled());
  {
    ScopedSpan span(&unarmed, span_id(SpanName::Ftran));
  }
  EXPECT_TRUE(unarmed.spans().empty());
  EXPECT_EQ(unarmed.dropped(), 0);
}

TEST(SpanTest, NestedScopesRecordDepthAndContainment) {
  SpanProfiler prof;
  SpanBuffer* buf = prof.main();
  ASSERT_NE(buf, nullptr);
  {
    ScopedSpan outer(buf, span_id(SpanName::Encode));
    {
      ScopedSpan inner(buf, span_id(SpanName::Presolve));
    }
    {
      ScopedSpan inner2(buf, span_id(SpanName::Solve));
    }
  }
  // Recorded at exit: children precede the parent in raw buffer order...
  ASSERT_EQ(buf->spans().size(), 3u);
  EXPECT_EQ(buf->spans()[0].name, span_id(SpanName::Presolve));
  EXPECT_EQ(buf->spans()[2].name, span_id(SpanName::Encode));
  // ...and collect() re-sorts so the parent comes first.
  const SpanProfiler::Report rep = prof.collect();
  ASSERT_EQ(rep.spans.size(), 3u);
  EXPECT_EQ(rep.spans[0].name, span_id(SpanName::Encode));
  EXPECT_EQ(rep.spans[0].depth, 0);
  EXPECT_EQ(rep.spans[1].name, span_id(SpanName::Presolve));
  EXPECT_EQ(rep.spans[1].depth, 1);
  EXPECT_EQ(rep.spans[2].name, span_id(SpanName::Solve));
  EXPECT_EQ(rep.spans[2].depth, 1);
  // Containment: every child lies inside the parent's [t0, t1].
  const SpanRecord& parent = rep.spans[0];
  for (std::size_t i = 1; i < rep.spans.size(); ++i) {
    EXPECT_GE(rep.spans[i].t0, parent.t0);
    EXPECT_LE(rep.spans[i].t1, parent.t1);
  }
}

TEST(SpanTest, StopClosesEarlyAndDestructorRecordsNothingFurther) {
  SpanProfiler prof;
  SpanBuffer* buf = prof.main();
  {
    ScopedSpan span(buf, span_id(SpanName::RootLp));
    span.stop();
    ASSERT_EQ(buf->spans().size(), 1u);
  }
  EXPECT_EQ(buf->spans().size(), 1u);
}

TEST(SpanTest, CollectMergesWorkersInStartTimeOrder) {
  SpanProfiler prof;
  prof.arm_workers(3);
  ASSERT_EQ(prof.num_workers(), 3);
  // Interleave spans across workers so no single buffer is globally ordered.
  for (int round = 0; round < 2; ++round) {
    for (int w = 0; w < 3; ++w) {
      ScopedSpan span(prof.buffer(w), span_id(SpanName::Ftran));
    }
  }
  const SpanProfiler::Report rep = prof.collect();
  ASSERT_EQ(rep.spans.size(), 6u);
  for (std::size_t i = 1; i < rep.spans.size(); ++i) {
    EXPECT_LE(rep.spans[i - 1].t0, rep.spans[i].t0) << "slot " << i;
  }
  // All three workers are represented with their own id.
  std::vector<int> seen(3, 0);
  for (const SpanRecord& s : rep.spans) {
    ASSERT_GE(s.worker, 0);
    ASSERT_LT(s.worker, 3);
    ++seen[static_cast<std::size_t>(s.worker)];
  }
  for (int w = 0; w < 3; ++w) EXPECT_EQ(seen[static_cast<std::size_t>(w)], 2);
}

TEST(SpanTest, OverflowDropsNewestAndCounts) {
  SpanProfiler prof(/*capacity_per_worker=*/2);
  SpanBuffer* buf = prof.main();
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span(buf, span_id(SpanName::PriceRow));
  }
  EXPECT_EQ(buf->spans().size(), 2u);  // oldest two kept (drop-newest)
  EXPECT_EQ(prof.dropped(), 3);
  // take_dropped() hands out the delta exactly once.
  EXPECT_EQ(prof.take_dropped(), 3);
  EXPECT_EQ(prof.take_dropped(), 0);
  {
    ScopedSpan span(buf, span_id(SpanName::PriceRow));
  }
  EXPECT_EQ(prof.take_dropped(), 1);
  const SpanProfiler::Report rep = prof.collect();
  EXPECT_EQ(rep.dropped, 4);  // collect() reports the total, not the delta
}

TEST(SpanTest, InternIsIdempotentAndPreInternsEnumNames) {
  SpanProfiler prof;
  // The enum value is the id for every fixed name.
  for (std::int32_t i = 0; i < span_id(SpanName::kCount); ++i) {
    EXPECT_EQ(prof.name_of(i), to_string(static_cast<SpanName>(i)));
  }
  const std::int32_t a = prof.intern("cannot_connect(A, B)");
  const std::int32_t b = prof.intern("cannot_connect(A, B)");
  EXPECT_EQ(a, b);
  EXPECT_GE(a, span_id(SpanName::kCount));
  EXPECT_EQ(prof.name_of(a), "cannot_connect(A, B)");
  EXPECT_EQ(prof.name_of(9999), "?");
}

TEST(SpanTest, DisabledSpansAreEffectivelyFree) {
  // 1M disabled spans must complete in far less than the time even a single
  // clock read per span would cost. The generous bound (1s) keeps the test
  // meaningful without being flaky on loaded CI machines: 1M clock-reading
  // spans take well over 1s only when the disabled path is broken enough to
  // actually read clocks; a null test per span finishes in ~ms.
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1'000'000; ++i) {
    ScopedSpan span(nullptr, span_id(SpanName::Ftran));
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(secs, 1.0);
}

TEST(SpanTest, ChromeTraceExportIsWellFormed) {
  SpanProfiler prof;
  prof.arm_workers(2);
  {
    ScopedSpan outer(prof.main(), span_id(SpanName::Solve));
    ScopedSpan inner(prof.buffer(1), span_id(SpanName::Ftran));
  }
  std::ostringstream os;
  prof.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.find_last_not_of('\n'), json.size() - 2);
  EXPECT_EQ(json[json.size() - 2], '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ftran\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\":0"), std::string::npos);
}

TEST(SpanTest, SolveMilpRecordsPhasesAndCountsDroppedSpans) {
  using namespace archex::milp;
  // Tiny binary model, solved with a deliberately tiny span capacity so the
  // overflow accounting path is exercised end to end.
  Model m;
  LinExpr obj;
  LinExpr row;
  for (int j = 0; j < 6; ++j) {
    VarId v = m.add_binary();
    obj += (1.0 + 0.5 * j) * v;
    row += 1.0 * v;
  }
  m.add_constraint(std::move(row), Sense::GE, 3.0);
  m.set_objective(obj, ObjectiveSense::Minimize);

  SpanProfiler prof(/*capacity_per_worker=*/4);
  MilpOptions opts;
  opts.num_threads = 1;
  opts.profiler = &prof;
  opts.lp.span_sample = 1;  // record every pivot: guarantees overflow
  const Solution sol = solve_milp(m, opts);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);

  const SpanProfiler::Report rep = prof.collect();
  EXPECT_GT(rep.spans.size(), 0u);
  EXPECT_GT(rep.dropped, 0);
  const auto it = sol.metrics.find("milp.spans_dropped");
  ASSERT_NE(it, sol.metrics.end());
  EXPECT_GT(it->second, 0.0);
}

TEST(SpanTest, ParallelSolveRecordsSpansFromMultipleWorkers) {
  using namespace archex::milp;
  // A tree big enough that both pool workers run node LPs, with per-pivot
  // kernel sampling: each worker writes its own buffer concurrently, which
  // is exactly what the tsan CI slice needs to see (single-writer
  // discipline — arm before spawn, collect after join).
  Model m;
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> w(10, 30);
  LinExpr tw, tv;
  double cap = 0.0;
  for (int j = 0; j < 30; ++j) {
    VarId v = m.add_binary();
    const int wj = w(rng);
    tw += static_cast<double>(wj) * v;
    tv += (static_cast<double>(wj) + 5.0 + 0.1 * (j % 7)) * v;
    cap += wj;
  }
  m.add_constraint(std::move(tw), Sense::LE, 0.5 * cap);
  m.set_objective(tv, ObjectiveSense::Maximize);

  SpanProfiler prof;
  MilpOptions opts;
  opts.num_threads = 2;
  opts.profiler = &prof;
  opts.lp.span_sample = 1;
  const Solution sol = solve_milp(m, opts);
  EXPECT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_GE(prof.num_workers(), 2);
  const SpanProfiler::Report rep = prof.collect();
  bool worker1 = false;
  for (const SpanRecord& s : rep.spans) worker1 |= s.worker == 1;
  EXPECT_TRUE(worker1) << "no spans from pool worker 1";
}

TEST(MetricsTest, SnapshotAndPrometheusExposeTimerMax) {
  MetricsRegistry reg;
  Timer& t = reg.timer("phase");
  t.record(1'000'000'000);  // 1s
  t.record(3'000'000'000);  // 3s  <- the max
  t.record(2'000'000'000);  // 2s
  const auto snap = reg.snapshot();
  EXPECT_NEAR(snap.at("phase.seconds"), 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(snap.at("phase.count"), 3.0);
  EXPECT_NEAR(snap.at("phase.max"), 3.0, 1e-9);

  reg.counter("milp.nodes").add(41);
  reg.gauge("gap").set(0.125);
  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE archex_milp_nodes_total counter\n"
                      "archex_milp_nodes_total 41\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE archex_gap gauge\narchex_gap 0.125\n"),
            std::string::npos);
  EXPECT_NE(text.find("archex_phase_seconds_total 6\n"), std::string::npos);
  EXPECT_NE(text.find("archex_phase_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("archex_phase_max_seconds 3\n"), std::string::npos);
}

TEST(PerfReportTest, EpnEncodeAttributionIsNearComplete) {
  using namespace archex::domains::epn;
  SpanProfiler prof;
  EpnConfig cfg = small_config();
  cfg.reliability_eager = false;  // keep the solve cheap; encode is the point
  auto problem = make_problem(cfg, &prof);

  // Every encode path charges a named label, so attribution is complete.
  const PerfReport pre = build_perf_report(*problem, milp::Solution{});
  EXPECT_GT(pre.encode_total_seconds, 0.0);
  EXPECT_GE(pre.attributed_fraction, 0.9);
  EXPECT_GT(pre.rows.size(), 1u);
  bool structural = false;
  for (const PatternCostRow& r : pre.rows) structural |= r.label == "structural";
  EXPECT_TRUE(structural);

  // And the profiler saw the same pattern applications as nested spans
  // under "encode".
  const SpanProfiler::Report rep = prof.collect();
  ASSERT_FALSE(rep.spans.empty());
  EXPECT_EQ(rep.spans[0].name, span_id(SpanName::Encode));
  std::size_t pattern_spans = 0;
  for (const SpanRecord& s : rep.spans) {
    if (s.name >= span_id(SpanName::kCount)) ++pattern_spans;
  }
  EXPECT_EQ(pattern_spans, problem->num_patterns_applied());

  // Solving end to end fills in rows / presolve / simplex-share columns and
  // the report renders with the documented header.
  milp::MilpOptions opts;
  opts.time_limit_s = 60.0;
  opts.num_threads = 1;
  ExplorationResult res = problem->solve(opts);
  ASSERT_TRUE(res.feasible());
  const PerfReport post = build_perf_report(*problem, res.solution);
  EXPECT_GE(post.attributed_fraction, 0.9);
  EXPECT_EQ(post.model_rows, problem->model().num_constraints());
  EXPECT_LE(post.surviving_rows, post.model_rows);
  double share = 0.0;
  std::size_t rows_sum = 0;
  for (const PatternCostRow& r : post.rows) {
    share += r.simplex_share;
    rows_sum += r.rows;
  }
  EXPECT_EQ(rows_sum, post.model_rows);
  EXPECT_NEAR(share, 1.0, 1e-9);
  std::ostringstream os;
  write_perf_report(os, post);
  EXPECT_NE(os.str().find("per-pattern cost attribution"), std::string::npos);
  EXPECT_NE(os.str().find("structural"), std::string::npos);
}

}  // namespace
}  // namespace archex::obs
