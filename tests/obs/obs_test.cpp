/// Unit tests for the observability layer: the metrics registry (concurrent
/// counters, timer scopes, snapshot flattening), the single-writer trace ring
/// buffers (overflow, merge ordering, JSONL schema) and the node logger's
/// interval gating.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/node_log.hpp"
#include "obs/trace.hpp"

namespace archex::obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterSumsConcurrentAdds) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kAdds = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, HandlesAreStableAcrossRegistrations) {
  MetricsRegistry reg;
  Counter& a = reg.counter("n");
  Counter& b = reg.counter("n");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3);
  Gauge& g1 = reg.gauge("v");
  Gauge& g2 = reg.gauge("v");
  EXPECT_EQ(&g1, &g2);
  Timer& t1 = reg.timer("t");
  Timer& t2 = reg.timer("t");
  EXPECT_EQ(&t1, &t2);
}

TEST(MetricsTest, SnapshotFlattensAllKinds) {
  MetricsRegistry reg;
  reg.counter("nodes").add(7);
  reg.gauge("gap").set(0.25);
  reg.timer("phase").record(1'500'000'000);  // 1.5s
  const std::map<std::string, double> snap = reg.snapshot();
  ASSERT_EQ(snap.count("nodes"), 1u);
  EXPECT_DOUBLE_EQ(snap.at("nodes"), 7.0);
  EXPECT_DOUBLE_EQ(snap.at("gap"), 0.25);
  EXPECT_NEAR(snap.at("phase.seconds"), 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(snap.at("phase.count"), 1.0);
}

TEST(MetricsTest, ScopedTimerFeedsTimerAndMirror) {
  MetricsRegistry reg;
  Timer& t = reg.timer("scope");
  double mirror = -1.0;
  {
    ScopedTimer scope(&t, &mirror);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    scope.stop();
    // A stopped scope records nothing further on destruction.
  }
  EXPECT_EQ(t.count(), 1);
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_NEAR(mirror, t.seconds(), 1e-12);
  {
    ScopedTimer null_scope(nullptr, nullptr);  // must be a no-op
  }
  EXPECT_EQ(t.count(), 1);
}

TEST(MetricsTest, WriteJsonEmitsOneObject) {
  MetricsRegistry reg;
  reg.counter("a").add(2);
  reg.timer("b").record(500'000'000);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"a\":"), std::string::npos);
  EXPECT_NE(json.find("\"b.seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"b.count\":"), std::string::npos);
}

TEST(MetricsTest, EmptyHistogramQuantilesAreNaNEverywhere) {
  // Regression: empty-histogram quantiles used to report 0.0, which read as
  // "p99 was instant" in dashboards. They are NaN now, consistently across
  // the direct call, snapshot(), the JSON export (null) and the Prometheus
  // export (the literal NaN, valid exposition text).
  MetricsRegistry reg;
  Histogram& h = reg.histogram("serve.latency");
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(0.99)));

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("serve.latency.count"), 0.0);
  EXPECT_TRUE(std::isnan(snap.at("serve.latency.p50")));
  EXPECT_TRUE(std::isnan(snap.at("serve.latency.p99")));

  std::ostringstream js;
  reg.write_json(js);
  EXPECT_NE(js.str().find("\"serve.latency.p50\":null"), std::string::npos)
      << js.str();
  EXPECT_NE(js.str().find("\"serve.latency.p99\":null"), std::string::npos)
      << js.str();

  const std::string text = prometheus_text(reg);
  EXPECT_NE(text.find("archex_serve_latency_p50_seconds NaN"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("archex_serve_latency_p99_seconds NaN"),
            std::string::npos)
      << text;

  // One sample flips every path back to finite values.
  h.record(0.25);
  EXPECT_TRUE(std::isfinite(h.quantile(0.5)));
  EXPECT_TRUE(std::isfinite(reg.snapshot().at("serve.latency.p99")));
}

TEST(MetricsTest, HistogramQuantilesBracketObservations) {
  Histogram h;
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));  // empty: NaN, no crash
  // 1000 observations spread over [1 ms, 100 ms]; the log-bucketed estimate
  // must land within one sqrt(2) bucket of the true quantile.
  for (int i = 1; i <= 1000; ++i) h.record(1e-3 * (0.001 + 0.1 * i));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_NEAR(h.sum_seconds(), 1e-3 * (0.001 * 1000 + 0.1 * 500500), 1e-6);
  const double p50 = h.quantile(0.50);
  EXPECT_GE(p50, 0.050 / 1.5);
  EXPECT_LE(p50, 0.050 * 1.5);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 0.099 / 1.5);
  EXPECT_LE(p99, 0.101 * 1.5);
  EXPECT_GE(p99, p50);  // quantiles are monotone in q
}

TEST(MetricsTest, HistogramClampsOutliersWithoutLosingCounts) {
  Histogram h;
  h.record(0.0);     // below the 100 us floor -> first bucket
  h.record(-1.0);    // negative durations clamp, never index out of range
  h.record(1e9);     // absurd outlier -> overflow bucket
  EXPECT_EQ(h.count(), 3);
  EXPECT_GT(h.quantile(1.0), 0.0);
}

TEST(MetricsTest, HistogramRecordsConcurrently) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency");
  constexpr int kThreads = 4;
  constexpr int kRecords = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) h.record(1e-3 * (t + 1));
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kRecords);
  EXPECT_NEAR(h.sum_seconds(), 1e-3 * (1 + 2 + 3 + 4) * kRecords, 1e-6);
  // All mass sits in [1 ms, 4 ms]: the quantiles may not escape it.
  EXPECT_GE(h.quantile(0.5), 1e-3 / 1.5);
  EXPECT_LE(h.quantile(0.99), 4e-3 * 1.5);
}

TEST(MetricsTest, SnapshotAndPrometheusRenderHistograms) {
  MetricsRegistry reg;
  reg.histogram("serve.latency").record(0.25);
  reg.histogram("serve.latency").record(0.5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.at("serve.latency.count"), 2.0);
  EXPECT_NEAR(snap.at("serve.latency.sum"), 0.75, 1e-9);
  EXPECT_GT(snap.at("serve.latency.p50"), 0.0);
  EXPECT_GE(snap.at("serve.latency.p99"), snap.at("serve.latency.p50"));

  const std::string text = prometheus_text(reg);
  for (const char* needle :
       {"archex_serve_latency_seconds_sum", "archex_serve_latency_seconds_count",
        "archex_serve_latency_p50_seconds", "archex_serve_latency_p99_seconds"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

// ---------------------------------------------------------------------------
// Trace buffers
// ---------------------------------------------------------------------------

TEST(TraceTest, DefaultBufferIsDisabled) {
  TraceBuffer buf;
  EXPECT_FALSE(buf.enabled());
  buf.emit(EventType::NodeOpen, 1, 2.0);  // must be a no-op, not a crash
  EXPECT_TRUE(buf.drain().empty());
  EXPECT_EQ(buf.dropped(), 0);
}

TEST(TraceTest, RingOverflowKeepsNewestAndCountsDropped) {
  TraceBuffer buf;
  buf.init(0, 4, std::chrono::steady_clock::now());
  for (std::int64_t i = 0; i < 6; ++i) buf.emit(EventType::NodeOpen, i);
  EXPECT_EQ(buf.dropped(), 2);
  const std::vector<TraceEvent> events = buf.drain();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, static_cast<std::int64_t>(i + 2)) << "slot " << i;
  }
  // drain() resets the ring: the buffer is immediately reusable.
  buf.emit(EventType::NodeClose, 9);
  const std::vector<TraceEvent> again = buf.drain();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].id, 9);
}

TEST(TraceTest, MergeSortsEventsAcrossBuffers) {
  const auto epoch = std::chrono::steady_clock::now();
  std::vector<TraceBuffer> buffers(2);
  buffers[0].init(0, 16, epoch);
  buffers[1].init(1, 16, epoch);
  // Interleave writes so neither buffer alone is globally ordered.
  buffers[0].emit(EventType::NodeOpen, 1);
  buffers[1].emit(EventType::NodeOpen, 2);
  buffers[0].emit(EventType::NodeClose, 1);
  buffers[1].emit(EventType::NodeClose, 2);
  const Trace trace = merge_buffers(buffers);
  ASSERT_EQ(trace.events.size(), 4u);
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].t, trace.events[i].t);
  }
  EXPECT_EQ(trace.count(EventType::NodeOpen), 2u);
  EXPECT_EQ(trace.count(EventType::NodeClose), 2u);
  EXPECT_EQ(trace.num_workers(), 2);
  EXPECT_EQ(trace.dropped, 0);
}

TEST(TraceTest, JsonlUsesDocumentedKeysAndNullForNonFinite) {
  TraceBuffer buf;
  buf.init(3, 32, std::chrono::steady_clock::now());
  buf.emit(EventType::SolveStart, -1, 4.0);
  buf.emit(EventType::Phase, -1, 0.0, static_cast<std::uint8_t>(Phase::RootLp));
  buf.emit(EventType::NodeOpen, 1, std::numeric_limits<double>::quiet_NaN());
  buf.emit(EventType::NodeClose, 1, 12.5, static_cast<std::uint8_t>(NodeOutcome::Branched));
  buf.emit(EventType::Incumbent, 1, 42.0);
  buf.emit(EventType::Steal, 7, 2.0);
  buf.emit(EventType::SolveEnd, -1, 42.0);
  std::vector<TraceBuffer> buffers;
  buffers.push_back(std::move(buf));
  const Trace trace = merge_buffers(buffers);
  std::ostringstream os;
  trace.write_jsonl(os);
  const std::string out = os.str();

  EXPECT_NE(out.find("\"type\":\"solve_start\",\"worker\":3,\"workers\":4"),
            std::string::npos);
  EXPECT_NE(out.find("\"type\":\"phase\",\"worker\":3,\"phase\":\"root_lp\""),
            std::string::npos);
  EXPECT_NE(out.find("\"node\":1,\"parent_bound\":null"), std::string::npos);
  EXPECT_NE(out.find("\"outcome\":\"branched\",\"bound\":12.5"), std::string::npos);
  EXPECT_NE(out.find("\"node\":1,\"objective\":42"), std::string::npos);
  EXPECT_NE(out.find("\"node\":7,\"victim\":2"), std::string::npos);
  // One object per line, every line closed.
  std::istringstream lines(out);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, trace.events.size());
}

// ---------------------------------------------------------------------------
// Node logger
// ---------------------------------------------------------------------------

TEST(NodeLogTest, DisabledLoggerWritesNothing) {
  std::ostringstream os;
  NodeLogger no_sink(1.0, nullptr, std::chrono::steady_clock::now());
  EXPECT_FALSE(no_sink.enabled());
  EXPECT_FALSE(no_sink.due());
  no_sink.log_final({});
  NodeLogger no_interval(0.0, &os, std::chrono::steady_clock::now());
  EXPECT_FALSE(no_interval.enabled());
  no_interval.log({});
  no_interval.log_final({});
  EXPECT_TRUE(os.str().empty());
}

TEST(NodeLogTest, FinalLineBypassesIntervalAndPrintsHeader) {
  std::ostringstream os;
  NodeLogger logger(3600.0, &os, std::chrono::steady_clock::now());
  EXPECT_TRUE(logger.enabled());
  EXPECT_FALSE(logger.due());  // one hour from now
  NodeLogger::Line line;
  line.nodes = 120;
  line.open = 4;
  line.has_incumbent = true;
  line.incumbent = 1500.0;
  line.best_bound = 1450.0;
  line.steals = 2;
  logger.log(line);  // not due: must print nothing
  EXPECT_TRUE(os.str().empty());
  logger.log_final(line);
  const std::string out = os.str();
  EXPECT_NE(out.find("Nodes"), std::string::npos);
  EXPECT_NE(out.find("Best Bound"), std::string::npos);
  EXPECT_NE(out.find("120"), std::string::npos);
  EXPECT_NE(out.find("1500"), std::string::npos);
}

TEST(NodeLogTest, DueLinesAreRateLimited) {
  std::ostringstream os;
  NodeLogger logger(0.02, &os, std::chrono::steady_clock::now());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  ASSERT_TRUE(logger.due());
  NodeLogger::Line line;
  line.nodes = 1;
  logger.log(line);
  const std::string first = os.str();
  EXPECT_FALSE(first.empty());
  // Immediately afterwards the next interval has not elapsed: no second line.
  logger.log(line);
  EXPECT_EQ(os.str(), first);
}

TEST(NodeLogTest, MissingIncumbentRendersDashes) {
  std::ostringstream os;
  NodeLogger logger(1.0, &os, std::chrono::steady_clock::now());
  NodeLogger::Line line;
  line.nodes = 5;
  line.best_bound = std::numeric_limits<double>::infinity();
  logger.log_final(line);
  EXPECT_NE(os.str().find("--"), std::string::npos);
}

}  // namespace
}  // namespace archex::obs
