#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace archex::graph {
namespace {

Digraph diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(DigraphTest, BasicAccessors) {
  Digraph g = diamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
}

TEST(DigraphTest, Reachability) {
  Digraph g = diamond();
  const std::vector<bool> seen = reachable_from(g, {0});
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[3]);
  EXPECT_TRUE(reaches(g, {0}, 3));
  EXPECT_FALSE(reaches(g, {1}, 2));
}

TEST(DigraphTest, ReachabilityFromMultipleSources) {
  Digraph g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  EXPECT_TRUE(reaches(g, {0, 1}, 3));
  EXPECT_FALSE(reaches(g, {0}, 3));
}

TEST(DigraphTest, TopologicalOrderOnDag) {
  Digraph g = diamond();
  const std::vector<std::int32_t> order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](std::int32_t v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
  EXPECT_FALSE(has_cycle(g));
}

TEST(DigraphTest, CycleDetection) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(has_cycle(g));
  EXPECT_TRUE(topological_order(g).empty());
}

TEST(DigraphTest, AllPathsInDiamond) {
  Digraph g = diamond();
  const auto paths = all_paths(g, {0}, 3);
  EXPECT_EQ(paths.size(), 2u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), 3);
    EXPECT_EQ(p.size(), 3u);
  }
}

TEST(DigraphTest, PathEnumerationRespectsLimit) {
  // Complete bipartite-ish blowup: 2 layers of 4 nodes each.
  Digraph g(10);
  for (int a = 1; a <= 4; ++a) {
    g.add_edge(0, a);
    for (int b = 5; b <= 8; ++b) g.add_edge(a, b);
  }
  for (int b = 5; b <= 8; ++b) g.add_edge(b, 9);
  EXPECT_EQ(all_paths(g, {0}, 9).size(), 16u);
  EXPECT_EQ(all_paths(g, {0}, 9, 5).size(), 5u);
}

TEST(DigraphTest, PathsAreSimple) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // 2-cycle
  g.add_edge(1, 2);
  const auto paths = all_paths(g, {0}, 2);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<std::int32_t>{0, 1, 2}));
}

TEST(DigraphTest, VertexDisjointPathsDiamond) {
  EXPECT_EQ(vertex_disjoint_paths(diamond(), {0}, 3), 2);
}

TEST(DigraphTest, VertexDisjointPathsBottleneck) {
  // 0 -> 1 -> {2,3} -> 4: node 1 is a cut vertex.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  EXPECT_EQ(vertex_disjoint_paths(g, {0}, 4), 1);
}

TEST(DigraphTest, DisjointPathsFromMultipleSources) {
  // Two sources each with a private path to the sink.
  Digraph g(6);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(1, 3);
  g.add_edge(3, 4);
  EXPECT_EQ(vertex_disjoint_paths(g, {0, 1}, 4), 2);
}

TEST(DigraphTest, MaxFlowWithSourceCapacityOne) {
  // One source feeding two disjoint middle paths: with the source capped at
  // 1, only one unit can flow (the reliability semantics: a shared generator
  // is a shared failure point).
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  std::vector<int> cap = {1, 1, 1, 1'000'000};
  EXPECT_EQ(max_flow_unit_nodes(g, {0}, 3, cap), 1);
  cap[0] = 2;
  EXPECT_EQ(max_flow_unit_nodes(g, {0}, 3, cap), 2);
}

TEST(DigraphTest, LongestPathWeight) {
  Digraph g = diamond();
  // node weights: 1, 5, 2, 1 -> longest 0-1-3 = 7.
  EXPECT_DOUBLE_EQ(longest_path_weight(g, {0}, 3, {1, 5, 2, 1}), 7.0);
  EXPECT_THROW(
      {
        Digraph c(2);
        c.add_edge(0, 1);
        c.add_edge(1, 0);
        (void)longest_path_weight(c, {0}, 1, {1, 1});
      },
      std::invalid_argument);
}

TEST(DigraphTest, MinVertexCutDiamond) {
  // Both middle nodes must be cut to separate 0 from 3.
  const auto cut = min_vertex_cut(diamond(), {0}, 3);
  EXPECT_EQ(cut.size(), 2u);
}

TEST(DigraphTest, MinVertexCutBottleneck) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 4);
  const auto cut = min_vertex_cut(g, {0}, 4);
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_EQ(cut[0], 1);  // the articulation node
}

TEST(DigraphTest, MinVertexCutMatchesMenger) {
  // |min vertex cut| == max vertex-disjoint paths when no source-adjacent
  // bypass exists (Menger); verify the certificate actually disconnects.
  Digraph g(7);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 6);
  g.add_edge(4, 6);
  g.add_edge(1, 4);
  const auto cut = min_vertex_cut(g, {0}, 6);
  EXPECT_EQ(static_cast<int>(cut.size()), vertex_disjoint_paths(g, {0}, 6));
  // Removing the cut nodes must disconnect the sink.
  std::vector<std::int8_t> alive(7, 1);
  Digraph g2(7);
  for (std::size_t u = 0; u < 7; ++u) {
    for (std::int32_t v : g.successors(static_cast<std::int32_t>(u))) {
      bool dead = false;
      for (std::int32_t c : cut) {
        if (c == static_cast<std::int32_t>(u) || c == v) dead = true;
      }
      if (!dead) g2.add_edge(static_cast<std::int32_t>(u), v);
    }
  }
  EXPECT_FALSE(reaches(g2, {0}, 6));
}

// Property: Menger's theorem — max vertex-disjoint paths equals the max-flow
// count computed independently by brute-force path packing on small DAGs.
class MengerProperty : public ::testing::TestWithParam<int> {};

TEST_P(MengerProperty, FlowMatchesGreedyPackingBound) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 101u + 7u);
  const int layers = 3;
  const int width = 3;
  // Layered DAG: source 0, layers, sink last.
  const int n = 2 + layers * width;
  Digraph g(static_cast<std::size_t>(n));
  std::uniform_int_distribution<int> coin(0, 1);
  auto node = [&](int layer, int i) { return 1 + layer * width + i; };
  for (int i = 0; i < width; ++i) {
    if (coin(rng)) g.add_edge(0, node(0, i));
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      for (int j = 0; j < width; ++j) {
        if (coin(rng)) g.add_edge(node(l, i), node(l + 1, j));
      }
    }
  }
  for (int i = 0; i < width; ++i) {
    if (coin(rng)) g.add_edge(node(layers - 1, i), n - 1);
  }

  const int flow = vertex_disjoint_paths(g, {0}, n - 1);

  // Exhaustive check: find the max number of internally vertex-disjoint
  // paths by packing enumerated simple paths (small instance => tractable).
  const auto paths = all_paths(g, {0}, n - 1, 100000);
  int best = 0;
  const std::size_t np = paths.size();
  ASSERT_LT(np, 20u);
  for (std::uint32_t mask = 0; mask < (1u << np); ++mask) {
    std::vector<int> used(static_cast<std::size_t>(n), 0);
    bool ok = true;
    int count = 0;
    for (std::size_t pi = 0; pi < np && ok; ++pi) {
      if (!((mask >> pi) & 1u)) continue;
      ++count;
      for (std::int32_t v : paths[pi]) {
        if (v != 0 && v != n - 1 && used[static_cast<std::size_t>(v)]++) ok = false;
      }
    }
    if (ok) best = std::max(best, count);
  }
  EXPECT_EQ(flow, best) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MengerProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace archex::graph
