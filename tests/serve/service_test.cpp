/// Tests of the resilient exploration service (serve/): the NDJSON value
/// type, the request/response schema, and the full ExplorationService
/// lifecycle — deadlines as anytime degraded results, the NumericalError
/// retry ladder, per-request fault isolation, load shedding, and drain with
/// checkpoint/resume. The `ServeConcurrency*` suites run under the
/// ThreadSanitizer CI leg (see tests/CMakeLists.txt), so they stick to
/// millisecond-scale knapsacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <limits>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "milp/branch_bound.hpp"
#include "milp/lp_format.hpp"
#include "serve/json.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace archex::serve {
namespace {

/// Strongly correlated knapsack (the recipe shared with the fault-recovery
/// and parallel-BB suites): granularity pruning never fires, so deadlines
/// and preemptions land mid-search. n = 20 solves in milliseconds; n = 52,
/// seed 7 explores ~6e4 nodes (~0.5 s release build) — slow enough that an
/// 80 ms deadline or a 150 ms drain reliably interrupts it.
std::string knapsack_lp(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(10, 30);
  milp::Model m;
  milp::LinExpr tw, tv;
  double cap = 0.0;
  for (int j = 0; j < n; ++j) {
    milp::VarId v = m.add_binary();
    const int wj = w(rng);
    tw += static_cast<double>(wj) * v;
    tv += (static_cast<double>(wj) + 5.0 + 0.1 * (j % 7)) * v;
    cap += wj;
  }
  m.add_constraint(tw <= milp::LinExpr(0.5 * cap));
  m.set_objective(tv, milp::ObjectiveSense::Maximize);
  std::ostringstream os;
  m.write_lp(os);
  return os.str();
}

/// The exact solver path the service takes for an inline LP source: parse
/// the text, then solve. Reusing it makes bit-exact comparisons meaningful.
milp::Solution solo_solve(const std::string& lp_text,
                          milp::MilpOptions opts = {}) {
  std::istringstream in(lp_text);
  milp::Model m = milp::parse_lp(in);
  return milp::solve_milp(m, opts);
}

Request lp_request(std::string id, std::string lp_text) {
  Request r;
  r.id = std::move(id);
  r.lp = std::move(lp_text);
  return r;
}

ServiceOptions with_workers(int n) {
  ServiceOptions so;
  so.workers = n;
  return so;
}

// ---------------------------------------------------------------------------
// Json value type
// ---------------------------------------------------------------------------

TEST(ServeJsonTest, DumpIsDeterministicWithSortedKeys) {
  Json j;
  j["zeta"] = Json(1.0);
  j["alpha"] = Json("a");
  j["mid"] = Json(true);
  EXPECT_EQ(j.dump(), "{\"alpha\":\"a\",\"mid\":true,\"zeta\":1}");
}

TEST(ServeJsonTest, RoundTripPreservesStructureAndPrecision) {
  // 17 significant digits survive a dump/parse cycle bit-exactly.
  const double awkward = 247.70000000000002;
  Json j;
  j["obj"] = Json(awkward);
  j["neg"] = Json(-1.5e-11);
  j["text"] = Json("line\nbreak \"quoted\" \\slash");
  j["list"] = Json(Json::Array{Json(1.0), Json()});

  std::string err;
  const std::optional<Json> back = Json::parse(j.dump(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->dump(), j.dump());
  EXPECT_EQ(back->find("obj")->as_number(), awkward);
  EXPECT_EQ(back->find("text")->as_string(), "line\nbreak \"quoted\" \\slash");
  ASSERT_EQ(back->find("list")->as_array().size(), 2u);
  EXPECT_TRUE(back->find("list")->as_array()[1].is_null());
}

TEST(ServeJsonTest, ParsesUnicodeEscapes) {
  std::string err;
  const auto j = Json::parse("{\"s\":\"\\u0041\\u00e9\\t\"}", &err);
  ASSERT_TRUE(j.has_value()) << err;
  EXPECT_EQ(j->find("s")->as_string(), "A\xc3\xa9\t");
}

TEST(ServeJsonTest, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing", &err).has_value());
  EXPECT_FALSE(Json::parse("{\"a\":}", &err).has_value());
  EXPECT_FALSE(Json::parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(Json::parse("{'single':1}", &err).has_value());
  EXPECT_FALSE(Json::parse("0x10", &err).has_value());  // strtod hex rejected
  EXPECT_FALSE(Json::parse("nan", &err).has_value());
  // Depth bomb: the recursive-descent parser caps nesting instead of
  // overflowing the stack on hostile input.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::parse(deep, &err).has_value());
}

TEST(ServeJsonTest, NonFiniteNumbersDumpAsNull) {
  Json j;
  j["inf"] = Json(std::numeric_limits<double>::infinity());
  EXPECT_EQ(j.dump(), "{\"inf\":null}");
}

// ---------------------------------------------------------------------------
// Request schema
// ---------------------------------------------------------------------------

std::optional<Request> parse_request(const std::string& text, std::string* err) {
  const std::optional<Json> j = Json::parse(text, err);
  if (!j.has_value()) return std::nullopt;
  return Request::from_json(*j, err);
}

TEST(ServeRequestTest, MinimalRequestGetsDocumentedDefaults) {
  std::string err;
  const auto r = parse_request("{\"id\":\"r1\",\"lp\":\"...\"}", &err);
  ASSERT_TRUE(r.has_value()) << err;
  EXPECT_EQ(r->id, "r1");
  EXPECT_EQ(r->threads, 1);
  EXPECT_EQ(r->retries, -1);
  EXPECT_EQ(r->deadline_ms, 0.0);
  EXPECT_FALSE(r->droppable);
  EXPECT_FALSE(r->lint);
  EXPECT_TRUE(r->preemptible);
  // to_json -> from_json round-trips the whole schema.
  const auto back = Request::from_json(r->to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->to_json().dump(), r->to_json().dump());
}

TEST(ServeRequestTest, RejectsSchemaViolations) {
  std::string err;
  EXPECT_FALSE(parse_request("{\"lp\":\"...\"}", &err).has_value());
  EXPECT_FALSE(err.empty());  // missing id names the problem
  EXPECT_FALSE(parse_request("{\"id\":\"a\"}", &err).has_value());
  EXPECT_FALSE(
      parse_request("{\"id\":\"a\",\"lp\":\"x\",\"domain\":\"epn\"}", &err)
          .has_value());  // ambiguous source
  EXPECT_FALSE(
      parse_request("{\"id\":\"a\",\"domain\":\"nosuch\"}", &err).has_value());
  EXPECT_FALSE(
      parse_request("{\"id\":\"a\",\"lp\":\"x\",\"threads\":0}", &err)
          .has_value());
  EXPECT_FALSE(
      parse_request("{\"id\":\"a\",\"lp\":\"x\",\"deadline_ms\":-5}", &err)
          .has_value());
}

TEST(ServeRequestTest, CompiledOpSchema) {
  std::string err;
  // The happy path: sweep over a domain source with scenarios and a budget.
  const auto ok = parse_request(
      "{\"id\":\"a\",\"op\":\"sweep\",\"domain\":\"epn\",\"scale\":\"tiny\","
      "\"sweep\":[{\"name\":\"s0\"},{\"edge_cost_scale\":1.1,"
      "\"unavailable\":[\"GenA\"],\"rhs\":{\"row\":4},"
      "\"cost_scale\":{\"GenA\":1.5}}],\"budget_ms\":500}",
      &err);
  ASSERT_TRUE(ok.has_value()) << err;
  EXPECT_EQ(ok->op, "sweep");
  EXPECT_EQ(ok->scale, "tiny");
  ASSERT_EQ(ok->sweep.size(), 2u);
  EXPECT_EQ(ok->sweep[0].name, "s0");
  EXPECT_DOUBLE_EQ(ok->sweep[1].edge_cost_scale, 1.1);
  EXPECT_EQ(ok->sweep[1].unavailable, std::vector<std::string>{"GenA"});
  EXPECT_DOUBLE_EQ(ok->sweep[1].rhs.at("row"), 4.0);
  EXPECT_DOUBLE_EQ(ok->sweep[1].cost_scale.at("GenA"), 1.5);
  EXPECT_DOUBLE_EQ(ok->budget_ms, 500.0);
  // to_json -> from_json round-trips the compiled-op fields too.
  const auto back = Request::from_json(ok->to_json(), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->to_json().dump(), ok->to_json().dump());

  // Violations, each named: unknown op; compiled op over an LP source;
  // compiled op with lazy; sweep without scenarios; scale outside epn;
  // unknown scale value; negative budget.
  EXPECT_FALSE(parse_request("{\"id\":\"a\",\"op\":\"frobnicate\",\"lp\":\"x\"}",
                             &err).has_value());
  EXPECT_FALSE(parse_request("{\"id\":\"a\",\"op\":\"compile\",\"lp\":\"x\"}",
                             &err).has_value());
  EXPECT_FALSE(parse_request(
                   "{\"id\":\"a\",\"op\":\"compile\",\"domain\":\"epn\","
                   "\"lazy\":true}",
                   &err).has_value());
  EXPECT_FALSE(parse_request(
                   "{\"id\":\"a\",\"op\":\"sweep\",\"domain\":\"epn\"}", &err)
                   .has_value());
  EXPECT_FALSE(parse_request(
                   "{\"id\":\"a\",\"domain\":\"rpl\",\"scale\":\"tiny\"}", &err)
                   .has_value());
  EXPECT_FALSE(parse_request(
                   "{\"id\":\"a\",\"domain\":\"epn\",\"scale\":\"huge\"}", &err)
                   .has_value());
  EXPECT_FALSE(parse_request(
                   "{\"id\":\"a\",\"domain\":\"epn\",\"budget_ms\":-1}", &err)
                   .has_value());
}

// ---------------------------------------------------------------------------
// Retry backoff
// ---------------------------------------------------------------------------

TEST(ServeBackoffTest, DeterministicExponentialWithBoundedJitter) {
  const std::uint64_t seed = 0xABCDEF12345ULL;
  for (int attempt = 0; attempt < 5; ++attempt) {
    const double a = backoff_delay_ms(10.0, seed, attempt);
    const double b = backoff_delay_ms(10.0, seed, attempt);
    EXPECT_EQ(a, b);  // pure function of (base, seed, attempt)
    const double nominal = 10.0 * std::ldexp(1.0, attempt);
    EXPECT_GE(a, 0.5 * nominal);
    EXPECT_LT(a, 1.5 * nominal);
  }
  EXPECT_NE(backoff_delay_ms(10.0, 1, 0), backoff_delay_ms(10.0, 2, 0));
  EXPECT_EQ(backoff_delay_ms(0.0, seed, 3), 0.0);  // test default: no sleep
}

// ---------------------------------------------------------------------------
// Service lifecycle
// ---------------------------------------------------------------------------

TEST(ServeServiceTest, InlineLpSolvesToOptimalBitExact) {
  const std::string lp = knapsack_lp(20, 7);
  const milp::Solution solo = solo_solve(lp);
  ASSERT_EQ(solo.status, milp::SolveStatus::Optimal);

  ExplorationService svc(with_workers(1));
  const Response r = svc.run(lp_request("k20", lp));
  EXPECT_EQ(r.status, ResponseStatus::Optimal);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.attempts, 1);
  ASSERT_TRUE(r.has_objective);
  EXPECT_EQ(r.objective, solo.objective);  // same code path: bit-identical
  EXPECT_EQ(r.nodes, solo.nodes_explored);
  EXPECT_EQ(r.gap, 0.0);
  // The lifecycle trace walks the documented states in order.
  ASSERT_GE(r.lifecycle.size(), 4u);
  EXPECT_EQ(r.lifecycle.front().state, "start");
  EXPECT_EQ(r.lifecycle.back().state, "done");
}

TEST(ServeServiceTest, LpFileSourceMatchesInlineText) {
  const std::string lp = knapsack_lp(20, 7);
  const std::string path = ::testing::TempDir() + "serve_lpfile_test.lp";
  {
    std::ofstream out(path);
    out << lp;
  }
  ExplorationService svc(with_workers(1));
  Request req;
  req.id = "file";
  req.lp_file = path;
  const Response r = svc.run(req);
  EXPECT_EQ(r.status, ResponseStatus::Optimal);
  EXPECT_EQ(r.objective, solo_solve(lp).objective);
  std::remove(path.c_str());
}

TEST(ServeServiceTest, DeadlineReturnsAnytimeDegradedWithSoundGap) {
  const std::string lp = knapsack_lp(52, 7);
  const milp::Solution solo = solo_solve(lp);
  ASSERT_EQ(solo.status, milp::SolveStatus::Optimal);

  ExplorationService svc(with_workers(1));
  Request req = lp_request("deadline", lp);
  req.deadline_ms = 80;  // full solve needs ~6x that: expires mid-tree
  const Response r = svc.run(req);
  ASSERT_EQ(r.status, ResponseStatus::Degraded) << r.reason;
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.degraded);
  ASSERT_TRUE(r.has_objective);  // the anytime incumbent came back
  EXPECT_TRUE(std::isfinite(r.gap));
  EXPECT_GT(r.gap, 0.0);  // optimality genuinely unproven at the deadline
  // Soundness of the anytime answer (Maximize): the incumbent never beats
  // the true optimum and the reported bound still brackets it.
  EXPECT_LE(r.objective, solo.objective + 1e-6);
  EXPECT_GE(r.bound, solo.objective - 1e-6);
  EXPECT_LT(r.nodes, solo.nodes_explored);
  // The budget was enforced end-to-end, not per phase.
  EXPECT_LT(r.total_ms, 2000.0);
}

TEST(ServeServiceTest, QueueWaitSpendsTheDeadline) {
  // A request whose budget is consumed while queued gets an immediate
  // explicit timeout — it never reaches the solver with a fresh allowance.
  ExplorationService svc(with_workers(1));
  auto blocker = svc.submit(lp_request("blocker", knapsack_lp(52, 7)));
  Request starved = lp_request("starved", knapsack_lp(20, 7));
  starved.deadline_ms = 1;  // gone long before the blocker finishes
  auto fut = svc.submit(std::move(starved));
  const Response r = fut.get();
  EXPECT_EQ(r.status, ResponseStatus::Timeout);
  EXPECT_FALSE(r.has_objective);
  EXPECT_EQ(r.nodes, 0);
  EXPECT_EQ(r.reason, "deadline expired before execution");
  EXPECT_EQ(blocker.get().status, ResponseStatus::Optimal);
}

TEST(ServeServiceTest, LintGateRejectsWithoutPoisoningSiblings) {
  // x's bounds contradict: model-lint flags it at Error severity.
  const std::string bad =
      "Minimize\n obj: x\nSubject To\n c1: x >= 1\nBounds\n 2 <= x <= 1\nEnd\n";
  ExplorationService svc(with_workers(1));
  Request req = lp_request("bad", bad);
  req.lint = true;
  const Response r = svc.run(req);
  EXPECT_EQ(r.status, ResponseStatus::Rejected);
  EXPECT_EQ(r.reason.rfind("lint:", 0), 0u) << r.reason;
  EXPECT_FALSE(r.ok);

  // The rejection is isolated: the next request on the same service is clean.
  const Response ok = svc.run(lp_request("good", knapsack_lp(20, 7)));
  EXPECT_EQ(ok.status, ResponseStatus::Optimal);
}

TEST(ServeServiceTest, RetryLadderRecoversWithTightenedTolerances) {
  // nan-pivot from occurrence 2 with a 4-wide window defeats the solver's
  // own root recovery on attempt 1; the service retry (tightened
  // tolerances) runs past the window and recovers the optimum.
  const std::string lp = knapsack_lp(20, 7);
  const milp::Solution solo = solo_solve(lp);

  ExplorationService svc(with_workers(1));
  Request req = lp_request("transient", lp);
  req.inject = "nan-pivot:2:0:4";
  req.retries = 2;
  const Response r = svc.run(req);
  EXPECT_EQ(r.status, ResponseStatus::Optimal) << r.reason;
  EXPECT_EQ(r.attempts, 2);
  ASSERT_TRUE(r.has_objective);
  // Tightened tolerances may pivot differently; the optimum itself agrees.
  EXPECT_NEAR(r.objective, solo.objective, 1e-9);
}

TEST(ServeServiceTest, RetryLadderFallsBackToDenseKernel) {
  // An 8-wide window also defeats the tightened-tolerance rung; only the
  // dense-kernel rung (attempt 3) gets past it.
  const std::string lp = knapsack_lp(20, 7);
  ExplorationService svc(with_workers(1));
  Request req = lp_request("stubborn", lp);
  req.inject = "nan-pivot:2:0:8";
  req.retries = 2;
  const Response r = svc.run(req);
  EXPECT_EQ(r.status, ResponseStatus::Optimal) << r.reason;
  EXPECT_EQ(r.attempts, 3);
  EXPECT_NEAR(r.objective, solo_solve(lp).objective, 1e-9);
  EXPECT_GE(svc.metrics().counter("serve.retries").value(), 2.0);
}

TEST(ServeServiceTest, ExhaustedRetriesSurfaceAsErrorNeverFalseOptima) {
  ExplorationService svc(with_workers(1));
  Request req = lp_request("doomed", knapsack_lp(20, 7));
  req.inject = "nan-pivot:2:0:1000000000";  // persistent: every attempt fails
  req.retries = 1;
  const Response r = svc.run(req);
  EXPECT_EQ(r.status, ResponseStatus::Error);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.has_objective);  // never a fabricated answer
  EXPECT_EQ(r.attempts, 2);
  EXPECT_FALSE(r.reason.empty());
}

TEST(ServeServiceTest, BadInjectSpecIsARequestScopedError) {
  ExplorationService svc(with_workers(1));
  Request req = lp_request("typo", knapsack_lp(20, 7));
  req.inject = "no-such-site:1";
  const Response r = svc.run(req);
  EXPECT_EQ(r.status, ResponseStatus::Error);
  EXPECT_NE(r.reason.find("inject"), std::string::npos);
  EXPECT_EQ(svc.run(lp_request("after", knapsack_lp(20, 7))).status,
            ResponseStatus::Optimal);
}

TEST(ServeServiceTest, LoadShedsOldestDroppableWithExplicitRejection) {
  ServiceOptions so;
  so.workers = 1;
  so.queue_capacity = 2;
  ExplorationService svc(so);

  // Occupy the single worker, then wait until it picked the blocker up so
  // the admission queue is empty and fills deterministically below.
  auto blocker = svc.submit(lp_request("blocker", knapsack_lp(52, 7)));
  while (svc.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  Request b = lp_request("b", knapsack_lp(20, 7));
  b.droppable = true;
  Request c = lp_request("c", knapsack_lp(20, 8));
  c.droppable = true;
  auto fb = svc.submit(std::move(b));
  auto fc = svc.submit(std::move(c));
  // Queue is now at capacity. A non-droppable newcomer sheds the oldest
  // droppable (b); a further droppable newcomer sheds c.
  auto fd = svc.submit(lp_request("d", knapsack_lp(20, 9)));
  Request e = lp_request("e", knapsack_lp(20, 10));
  e.droppable = true;
  auto fe = svc.submit(std::move(e));

  const Response rb = fb.get();
  EXPECT_EQ(rb.status, ResponseStatus::Rejected);
  EXPECT_EQ(rb.reason, "shed");
  const Response rc = fc.get();
  EXPECT_EQ(rc.status, ResponseStatus::Rejected);
  EXPECT_EQ(rc.reason, "shed");
  EXPECT_EQ(fd.get().status, ResponseStatus::Optimal);
  EXPECT_EQ(fe.get().status, ResponseStatus::Optimal);
  EXPECT_EQ(blocker.get().status, ResponseStatus::Optimal);
  EXPECT_EQ(svc.metrics().counter("serve.shed").value(), 2.0);
}

TEST(ServeServiceTest, QueueFullRejectsNewcomerWhenNothingDroppable) {
  ServiceOptions so;
  so.workers = 1;
  so.queue_capacity = 1;
  ExplorationService svc(so);
  auto blocker = svc.submit(lp_request("blocker", knapsack_lp(52, 7)));
  while (svc.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto fb = svc.submit(lp_request("b", knapsack_lp(20, 7)));  // fills the queue
  auto fc = svc.submit(lp_request("c", knapsack_lp(20, 8)));  // turned away
  const Response rc = fc.get();
  EXPECT_EQ(rc.status, ResponseStatus::Rejected);
  EXPECT_EQ(rc.reason, "queue_full");
  EXPECT_EQ(fb.get().status, ResponseStatus::Optimal);
  EXPECT_EQ(blocker.get().status, ResponseStatus::Optimal);
}

TEST(ServeServiceTest, DrainPreemptsCheckpointsAndResumeMatchesSolo) {
  const std::string lp = knapsack_lp(52, 7);
  const milp::Solution solo = solo_solve(lp);
  ASSERT_EQ(solo.status, milp::SolveStatus::Optimal);

  ServiceOptions so;
  so.workers = 1;
  so.checkpoint_dir = ::testing::TempDir();
  so.checkpoint_interval_s = 0.01;
  std::string ck_path;
  {
    ExplorationService svc(so);
    auto fut = svc.submit(lp_request("drainme", lp));
    // Let the solve get properly underway (incumbent + open tree) first.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const ExplorationService::DrainReport rep = svc.drain();
    const Response r = fut.get();
    ASSERT_EQ(r.status, ResponseStatus::Preempted) << r.reason;
    EXPECT_FALSE(r.ok);
    ASSERT_TRUE(r.resumable);
    ASSERT_FALSE(r.checkpoint.empty());
    ck_path = r.checkpoint;
    EXPECT_EQ(rep.preempted, 1u);
    ASSERT_EQ(rep.checkpoints.size(), 1u);
    EXPECT_EQ(rep.checkpoints.front(), ck_path);
    EXPECT_TRUE(std::ifstream(ck_path).good());
    // Dead after drain: nothing further is admitted.
    EXPECT_EQ(svc.run(lp_request("late", lp)).status, ResponseStatus::Rejected);
  }

  // A fresh service resumes the checkpoint and lands on the uninterrupted
  // optimum — preemption paused the work, it did not lose or corrupt it.
  ExplorationService svc2(with_workers(1));
  Request resume = lp_request("drainme", lp);
  resume.checkpoint = ck_path;
  resume.resume = true;
  const Response r2 = svc2.run(resume);
  EXPECT_EQ(r2.status, ResponseStatus::Optimal) << r2.reason;
  EXPECT_NEAR(r2.objective, solo.objective, 1e-9);
  EXPECT_GT(r2.nodes, 0);
  std::remove(ck_path.c_str());
}

TEST(ServeServiceTest, DrainShedsQueueAndClosesAdmission) {
  ExplorationService svc(with_workers(1));
  auto blocker = svc.submit(lp_request("blocker", knapsack_lp(52, 7)));
  while (svc.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::future<Response>> queued;
  queued.push_back(svc.submit(lp_request("q1", knapsack_lp(20, 7))));
  queued.push_back(svc.submit(lp_request("q2", knapsack_lp(20, 8))));
  const auto rep = svc.drain();
  EXPECT_EQ(rep.shed, 2u);
  for (auto& f : queued) {
    const Response r = f.get();
    EXPECT_EQ(r.status, ResponseStatus::Rejected);
    EXPECT_EQ(r.reason, "drained");
  }
  // The in-flight blocker was preempted (no deadline pressure of its own).
  EXPECT_EQ(blocker.get().status, ResponseStatus::Preempted);
  EXPECT_EQ(svc.run(lp_request("late", knapsack_lp(20, 7))).status,
            ResponseStatus::Rejected);
}

TEST(ServeServiceTest, PrometheusExposesServeMetrics) {
  ExplorationService svc(with_workers(1));
  svc.submit(lp_request("m1", knapsack_lp(20, 7))).get();
  Request deg = lp_request("m2", knapsack_lp(52, 7));
  deg.deadline_ms = 60;
  svc.run(deg);
  const std::string text = svc.prometheus();
  for (const char* needle :
       {"archex_serve_requests_total", "archex_serve_completed_total",
        "archex_serve_optimal_total", "archex_serve_degraded_total",
        "archex_serve_queue_depth", "archex_serve_workers",
        "archex_serve_latency_seconds_sum", "archex_serve_latency_seconds_count",
        "archex_serve_latency_p50_seconds", "archex_serve_latency_p99_seconds",
        "archex_serve_queue_wait_seconds_count"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

// ---------------------------------------------------------------------------
// Compiled-pipeline ops (docs/pipeline.md)
// ---------------------------------------------------------------------------

Request compiled_request(std::string id, std::string op) {
  Request r;
  r.id = std::move(id);
  r.op = std::move(op);
  r.domain = "epn";
  r.scale = "tiny";  // the k = 1 regime; solves in well under a second
  return r;
}

TEST(ServeCompiledTest, CompileOpCachesByFingerprint) {
  ExplorationService svc(with_workers(1));
  const Response first = svc.run(compiled_request("c1", "compile"));
  EXPECT_EQ(first.status, ResponseStatus::Compiled) << first.reason;
  EXPECT_TRUE(first.ok);
  EXPECT_EQ(first.cache, "miss");
  EXPECT_NE(first.fingerprint, 0u);

  const Response again = svc.run(compiled_request("c2", "compile"));
  EXPECT_EQ(again.status, ResponseStatus::Compiled);
  EXPECT_EQ(again.cache, "hit");  // same spec key -> cached artifact
  EXPECT_EQ(again.fingerprint, first.fingerprint);
  EXPECT_EQ(svc.metrics().counter("serve.compile.cache_hits").value(), 1);
  EXPECT_EQ(svc.metrics().counter("serve.compile.cache_misses").value(), 1);

  // A different scale is a different spec: its own fingerprint, its own miss.
  Request small = compiled_request("c3", "compile");
  small.scale = "small";
  const Response other = svc.run(small);
  EXPECT_EQ(other.status, ResponseStatus::Compiled);
  EXPECT_EQ(other.cache, "miss");
  EXPECT_NE(other.fingerprint, first.fingerprint);
}

TEST(ServeCompiledTest, SolveCompiledMatchesClassicExplore) {
  ExplorationService svc(with_workers(1));
  Request classic;
  classic.id = "classic";
  classic.domain = "epn";
  classic.scale = "tiny";
  const Response ref = svc.run(classic);
  ASSERT_EQ(ref.status, ResponseStatus::Optimal) << ref.reason;

  const Response compiled = svc.run(compiled_request("sc", "solve_compiled"));
  ASSERT_EQ(compiled.status, ResponseStatus::Optimal) << compiled.reason;
  EXPECT_TRUE(compiled.has_objective);
  EXPECT_NEAR(compiled.objective, ref.objective,
              1e-6 * std::max(1.0, std::abs(ref.objective)));
  // A single-scenario solve reports at the top level only; per-scenario
  // arrays (and warm/cold counts) belong to sweep responses.
  EXPECT_TRUE(compiled.scenarios.empty());
  // The classic explore never compiles, so this request paid the encode.
  EXPECT_EQ(compiled.cache, "miss");
}

TEST(ServeCompiledTest, SweepWarmStartsAndReportsPerScenario) {
  ExplorationService svc(with_workers(1));
  Request sweep = compiled_request("sw", "sweep");
  for (int i = 0; i < 4; ++i) {
    ScenarioSpec sc;
    sc.name = "s" + std::to_string(i);
    sc.edge_cost_scale = 1.0 + 0.02 * i;
    sweep.sweep.push_back(sc);
  }
  const Response r = svc.run(sweep);
  ASSERT_EQ(r.status, ResponseStatus::Optimal) << r.reason;
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.cache, "miss");  // fresh service: this request paid the encode
  ASSERT_EQ(r.scenarios.size(), 4u);
  for (std::size_t i = 0; i < r.scenarios.size(); ++i) {
    EXPECT_EQ(r.scenarios[i].status, ResponseStatus::Optimal) << i;
    EXPECT_TRUE(r.scenarios[i].has_objective) << i;
    EXPECT_EQ(r.scenarios[i].name, "s" + std::to_string(i));
  }
  EXPECT_FALSE(r.scenarios[0].warm);  // nothing to start from
  EXPECT_EQ(r.cold_solves, 1);
  EXPECT_EQ(r.warm_solves, 3);
  EXPECT_EQ(svc.metrics().counter("serve.sweep.warm").value(), 3);
  // The response's top-level objective mirrors the last scenario, so sweep
  // lines diff cleanly against solve_compiled lines.
  EXPECT_EQ(r.objective, r.scenarios.back().objective);
}

TEST(ServeCompiledTest, BudgetBoundsACompiledRequest) {
  ExplorationService svc(with_workers(1));
  Request r = compiled_request("b1", "solve_compiled");
  r.budget_ms = 0.001;  // expires during admission: immediate anytime answer
  const Response out = svc.run(r);
  EXPECT_EQ(out.status, ResponseStatus::Timeout);
  EXPECT_FALSE(out.ok);
}

// ---------------------------------------------------------------------------
// Concurrency suites (ThreadSanitizer CI leg)
// ---------------------------------------------------------------------------

TEST(ServeConcurrencyTest, ConcurrentRequestsMatchSoloBitExact) {
  // Eight fast knapsacks race through four workers; every response must be
  // bit-identical to its solo run — concurrency may reorder completion,
  // never results.
  ExplorationService svc(with_workers(4));
  std::vector<std::string> lps;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 8; ++i) {
    lps.push_back(knapsack_lp(16 + i, 7 + static_cast<unsigned>(i)));
    futs.push_back(svc.submit(lp_request("c" + std::to_string(i), lps.back())));
  }
  for (int i = 0; i < 8; ++i) {
    const Response r = futs[static_cast<std::size_t>(i)].get();
    const milp::Solution solo = solo_solve(lps[static_cast<std::size_t>(i)]);
    ASSERT_EQ(r.status, ResponseStatus::Optimal) << r.id << ": " << r.reason;
    EXPECT_EQ(r.objective, solo.objective) << r.id;
    EXPECT_EQ(r.nodes, solo.nodes_explored) << r.id;
  }
}

TEST(ServeConcurrencyTest, FaultedRequestFailsAloneUnderLoad) {
  ExplorationService svc(with_workers(4));
  std::vector<std::string> lps;
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 6; ++i) {
    lps.push_back(knapsack_lp(16 + i, 21 + static_cast<unsigned>(i)));
    Request req = lp_request("f" + std::to_string(i), lps.back());
    if (i == 2) {
      req.inject = "nan-pivot:2:0:1000000000";
      req.retries = 0;
    }
    futs.push_back(svc.submit(std::move(req)));
  }
  for (int i = 0; i < 6; ++i) {
    const Response r = futs[static_cast<std::size_t>(i)].get();
    if (i == 2) {
      EXPECT_EQ(r.status, ResponseStatus::Error);
      EXPECT_FALSE(r.has_objective);
    } else {
      ASSERT_EQ(r.status, ResponseStatus::Optimal) << r.id << ": " << r.reason;
      EXPECT_EQ(r.objective, solo_solve(lps[static_cast<std::size_t>(i)]).objective)
          << r.id;
    }
  }
}

TEST(ServeConcurrencyTest, ParallelSubmittersAndDrainResolveEveryFuture) {
  // Four submitter threads race a mid-flight drain; the invariant is
  // accounting, not outcomes: every future resolves with a terminal status
  // and nothing hangs or crashes.
  ExplorationService svc(with_workers(2));
  std::mutex mu;
  std::vector<std::future<Response>> futs;
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&svc, &mu, &futs, t] {
      for (int i = 0; i < 4; ++i) {
        auto f = svc.submit(lp_request(
            "s" + std::to_string(t) + "_" + std::to_string(i),
            knapsack_lp(14 + i, static_cast<unsigned>(3 * t + i + 1))));
        std::lock_guard<std::mutex> lock(mu);
        futs.push_back(std::move(f));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  svc.drain();
  for (std::thread& t : submitters) t.join();
  ASSERT_EQ(futs.size(), 16u);
  int resolved = 0;
  for (auto& f : futs) {
    const Response r = f.get();  // must not hang
    EXPECT_TRUE(r.status == ResponseStatus::Optimal ||
                r.status == ResponseStatus::Rejected ||
                r.status == ResponseStatus::Preempted)
        << to_string(r.status);
    ++resolved;
  }
  EXPECT_EQ(resolved, 16);
}

}  // namespace
}  // namespace archex::serve
