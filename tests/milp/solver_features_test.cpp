/// Tests for solver features added for architecture-exploration workloads:
/// wall-clock deadlines inside the simplex, objective-granularity pruning,
/// root reduced-cost fixing, and the reduced-cost/statuses introspection API.
#include <gtest/gtest.h>

#include <chrono>
#include <random>

#include "milp/branch_bound.hpp"
#include "milp/simplex.hpp"

namespace archex::milp {
namespace {

TEST(SolverFeatureTest, SimplexHonorsDeadline) {
  // A large LP with an already-expired deadline must return TimeLimit fast.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> coef(0.1, 2.0);
  Model m;
  std::vector<VarId> v;
  for (int j = 0; j < 300; ++j) v.push_back(m.add_continuous(0, 10));
  for (int i = 0; i < 300; ++i) {
    LinExpr e;
    for (int j = 0; j < 300; j += 3) e += coef(rng) * v[static_cast<std::size_t>(j)];
    m.add_constraint(std::move(e), Sense::LE, 50.0);
  }
  LinExpr obj;
  for (const VarId x : v) obj += -1.0 * x;
  m.set_objective(obj);

  SimplexOptions so;
  so.deadline = std::chrono::steady_clock::now();
  SimplexSolver lp(m, so);
  const auto t0 = std::chrono::steady_clock::now();
  const SolveStatus st = lp.solve_primal();
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(st, SolveStatus::TimeLimit);
  EXPECT_LT(secs, 2.0);
}

TEST(SolverFeatureTest, MilpTimeLimitWithoutIncumbentIsTruthful) {
  // Zero time budget: the solver must not claim optimality or feasibility.
  std::mt19937 rng(9);
  std::uniform_int_distribution<int> w(1, 9);
  Model m;
  LinExpr tw, tv;
  for (int i = 0; i < 30; ++i) {
    VarId v = m.add_binary();
    tw += static_cast<double>(w(rng)) * v;
    tv += static_cast<double>(w(rng)) * v;
  }
  m.add_constraint(tw <= LinExpr(40.0));
  m.set_objective(tv, ObjectiveSense::Maximize);
  MilpOptions o;
  o.time_limit_s = 0.0;
  const Solution s = solve_milp(m, o);
  EXPECT_NE(s.status, SolveStatus::Optimal);
}

TEST(SolverFeatureTest, GranularityPruningStillFindsOptimum) {
  // All-cost-2000 selection problem: granularity pruning must not cut off
  // the true optimum, only equal-cost plateaus.
  Model m;
  std::vector<VarId> v;
  LinExpr cover;
  LinExpr obj;
  for (int j = 0; j < 8; ++j) {
    v.push_back(m.add_binary());
    cover += LinExpr(v.back());
    obj += 2000.0 * v.back();
  }
  m.add_constraint(std::move(cover), Sense::GE, 3.0);
  m.set_objective(obj);
  const Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 6000.0, 1e-6);
}

TEST(SolverFeatureTest, MixedGranularityDisabledByContinuousCost) {
  // A continuous variable in the objective disables granularity pruning;
  // the optimum has a fractional objective and must be found exactly.
  Model m;
  VarId b = m.add_binary();
  VarId x = m.add_continuous(0, 1.0);
  m.add_constraint(LinExpr(b) + LinExpr(x) >= LinExpr(1.3));
  m.set_objective(10.0 * b + 1.0 * x);
  const Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 10.3, 1e-6);
}

TEST(SolverFeatureTest, ReducedCostsAtOptimum) {
  // min -x - 2y s.t. x + y <= 10, x <= 7, y <= 6: optimum x=4, y=6.
  Model m;
  VarId x = m.add_continuous(0, 7);
  VarId y = m.add_continuous(0, 6);
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.set_objective(-1.0 * x - 2.0 * y);
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  const std::vector<double> d = lp.reduced_costs();
  ASSERT_EQ(d.size(), 2u);
  // y at its upper bound: reduced cost must be <= 0 (improving direction
  // blocked by the bound); x is basic: reduced cost 0.
  const auto sx = lp.column_status(0);
  const auto sy = lp.column_status(1);
  if (sx == SimplexSolver::BoundStatus::Basic) {
    EXPECT_NEAR(d[0], 0.0, 1e-7);
  }
  if (sy == SimplexSolver::BoundStatus::AtUpper) {
    EXPECT_LE(d[1], 1e-7);
  }
}

TEST(SolverFeatureTest, DualValuesAtOptimum) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier-Lieberman).
  // Known shadow prices (max sense): y1 = 0, y2 = 3/2, y3 = 1.
  Model m;
  VarId x = m.add_continuous(0, kInf, "x");
  VarId y = m.add_continuous(0, kInf, "y");
  m.add_constraint(LinExpr(x) <= LinExpr(4.0));
  m.add_constraint(2.0 * y <= LinExpr(12.0));
  m.add_constraint(3.0 * x + 2.0 * y <= LinExpr(18.0));
  m.set_objective(3.0 * x + 5.0 * y, ObjectiveSense::Maximize);
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  // Duals are reported in the model's own sense: these are the textbook
  // maximization shadow prices (the engine's internal minimize-sense values
  // are flipped back on the way out).
  const std::vector<double> duals = lp.dual_values();
  ASSERT_EQ(duals.size(), 3u);
  EXPECT_NEAR(duals[0], 0.0, 1e-7);
  EXPECT_NEAR(duals[1], 1.5, 1e-7);
  EXPECT_NEAR(duals[2], 1.0, 1e-7);
  // Strong duality: b^T y == optimal objective (model sense).
  const double by = 4 * duals[0] + 12 * duals[1] + 18 * duals[2];
  EXPECT_NEAR(by, 36.0, 1e-6);
}

TEST(SolverFeatureTest, ReducedCostsReportedInModelSenseForMaximize) {
  // max 5x s.t. x <= 4 (bound), y <= 3 with zero profit: at the optimum
  // x sits at its upper bound with a *positive* profit-sense reduced cost
  // (raising the bound raises the objective), and a maximize-sense dual of
  // +5 on the binding constraint.
  Model m;
  VarId x = m.add_continuous(0, kInf, "x");
  VarId y = m.add_continuous(0, 3, "y");
  m.add_constraint(LinExpr(x) <= LinExpr(4.0));
  m.set_objective(5.0 * x + 0.0 * y, ObjectiveSense::Maximize);
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  EXPECT_NEAR(-lp.objective_value(), 20.0, 1e-7);  // engine is minimize sense
  const std::vector<double> duals = lp.dual_values();
  ASSERT_EQ(duals.size(), 1u);
  EXPECT_NEAR(duals[0], 5.0, 1e-7);
  // The same model posed as an equivalent minimization must report identical
  // sensitivity numbers now that both are in model sense.
  Model mm;
  VarId mx = mm.add_continuous(0, kInf, "x");
  VarId my = mm.add_continuous(0, 3, "y");
  mm.add_constraint(LinExpr(mx) <= LinExpr(4.0));
  mm.set_objective(-5.0 * mx + 0.0 * my);
  SimplexSolver mlp(mm);
  ASSERT_EQ(mlp.solve_primal(), SolveStatus::Optimal);
  const std::vector<double> dmax = lp.reduced_costs();
  const std::vector<double> dmin = mlp.reduced_costs();
  ASSERT_EQ(dmax.size(), 2u);
  ASSERT_EQ(dmin.size(), 2u);
  // min sense: d = c - y A; model sense for the max model must be -that.
  EXPECT_NEAR(dmax[0], -dmin[0], 1e-9);
  EXPECT_NEAR(dmax[1], -dmin[1], 1e-9);
  EXPECT_NEAR(mlp.dual_values()[0], -duals[0], 1e-9);
}

TEST(SolverFeatureTest, SymmetricSelectionSolvesQuickly) {
  // 12 identical options, pick 4: granularity pruning + probe dive keep the
  // node count tiny despite the combinatorial plateau.
  Model m;
  LinExpr pick;
  LinExpr obj;
  for (int j = 0; j < 12; ++j) {
    VarId v = m.add_binary();
    pick += LinExpr(v);
    obj += 5.0 * v;
  }
  m.add_constraint(std::move(pick), Sense::EQ, 4.0);
  m.set_objective(obj);
  const Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 20.0, 1e-7);
  EXPECT_LT(s.nodes_explored, 50);
}

// Property: presolve+granularity+fixing stack agrees with plain enumeration
// on mixed binary/continuous models.
class MixedMilpProperty : public ::testing::TestWithParam<int> {};

TEST_P(MixedMilpProperty, AgreesWithSemiExhaustiveReference) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31337u + 1u);
  std::uniform_real_distribution<double> coef(-3.0, 3.0);

  // 4 binaries + 1 continuous in [0, 4].
  Model m;
  std::vector<VarId> b;
  for (int j = 0; j < 4; ++j) b.push_back(m.add_binary());
  VarId x = m.add_continuous(0, 4);

  std::vector<std::array<double, 5>> rows;
  std::vector<double> rhs;
  for (int i = 0; i < 3; ++i) {
    std::array<double, 5> r{};
    LinExpr e;
    for (int j = 0; j < 4; ++j) {
      r[static_cast<std::size_t>(j)] = std::round(coef(rng));
      e += r[static_cast<std::size_t>(j)] * b[static_cast<std::size_t>(j)];
    }
    r[4] = std::round(coef(rng));
    e += r[4] * x;
    rows.push_back(r);
    rhs.push_back(std::round(coef(rng)) + 3.0);
    m.add_constraint(std::move(e), Sense::LE, rhs.back());
  }
  std::array<double, 5> c{};
  LinExpr obj;
  for (int j = 0; j < 4; ++j) {
    c[static_cast<std::size_t>(j)] = std::round(coef(rng));
    obj += c[static_cast<std::size_t>(j)] * b[static_cast<std::size_t>(j)];
  }
  c[4] = std::round(coef(rng));
  obj += c[4] * x;
  m.set_objective(obj);

  // Reference: enumerate the 16 binary points; for each, the continuous var
  // optimum is at a bound of its feasible interval (single variable).
  double best = kInf;
  for (int mask = 0; mask < 16; ++mask) {
    double lo = 0.0;
    double hi = 4.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      double fixed = 0.0;
      for (int j = 0; j < 4; ++j) {
        if ((mask >> j) & 1) fixed += rows[i][static_cast<std::size_t>(j)];
      }
      const double room = rhs[i] - fixed;
      const double a = rows[i][4];
      if (std::abs(a) < 1e-12) {
        if (room < -1e-9) lo = 1.0, hi = 0.0;  // infeasible
      } else if (a > 0) {
        hi = std::min(hi, room / a);
      } else {
        lo = std::max(lo, room / a);
      }
    }
    if (lo > hi + 1e-9) continue;
    double fixed_cost = 0.0;
    for (int j = 0; j < 4; ++j) {
      if ((mask >> j) & 1) fixed_cost += c[static_cast<std::size_t>(j)];
    }
    best = std::min(best, fixed_cost + c[4] * (c[4] >= 0 ? lo : hi));
  }

  const Solution s = solve_milp(m);
  if (best >= kInf) {
    EXPECT_EQ(s.status, SolveStatus::Infeasible) << "seed " << GetParam();
  } else {
    ASSERT_TRUE(s.optimal()) << "seed " << GetParam();
    EXPECT_NEAR(s.objective, best, 1e-6) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedMilpProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace archex::milp
