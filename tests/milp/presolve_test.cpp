#include "milp/presolve.hpp"

#include <gtest/gtest.h>

#include "milp/branch_bound.hpp"

namespace archex::milp {
namespace {

TEST(PresolveTest, SingletonRowBecomesBound) {
  Model m;
  VarId x = m.add_continuous(0, 10, "x");
  VarId y = m.add_continuous(0, 10, "y");
  m.add_constraint(2.0 * x <= LinExpr(6.0));  // x <= 3
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(8.0));
  m.set_objective(LinExpr(x) + LinExpr(y));
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.reduced.num_constraints(), 1u);
  // x kept as a variable with tightened upper bound 3.
  bool found = false;
  for (std::size_t j = 0; j < r.reduced.num_vars(); ++j) {
    if (r.reduced.vars()[j].name == "x") {
      EXPECT_NEAR(r.reduced.vars()[j].ub, 3.0, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PresolveTest, EqualitySingletonFixesVariable) {
  Model m;
  VarId x = m.add_continuous(0, 10, "x");
  VarId y = m.add_continuous(0, 10, "y");
  m.add_constraint(LinExpr(x) == LinExpr(4.0));
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(6.0));
  m.set_objective(-1.0 * y);
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.vars_fixed, 1u);
  ASSERT_EQ(r.orig_of_reduced.size(), 1u);
  // Substitution: y <= 2.
  std::vector<double> xr = {2.0};
  std::vector<double> full = r.postsolve(xr);
  EXPECT_NEAR(full[static_cast<std::size_t>(x.index)], 4.0, 1e-9);
  EXPECT_NEAR(full[static_cast<std::size_t>(y.index)], 2.0, 1e-9);
}

TEST(PresolveTest, DetectsInfeasibleBounds) {
  Model m;
  VarId x = m.add_continuous(0, 1);
  m.add_constraint(LinExpr(x) >= LinExpr(5.0));
  m.set_objective(LinExpr(x));
  PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(PresolveTest, DetectsActivityInfeasibility) {
  Model m;
  VarId x = m.add_continuous(0, 1);
  VarId y = m.add_continuous(0, 1);
  m.add_constraint(LinExpr(x) + LinExpr(y) >= LinExpr(3.0));
  m.set_objective(LinExpr(x));
  PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(PresolveTest, RemovesRedundantRows) {
  Model m;
  VarId x = m.add_continuous(0, 1);
  VarId y = m.add_continuous(0, 1);
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(5.0));  // always true
  m.set_objective(LinExpr(x));
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.reduced.num_constraints(), 0u);
  EXPECT_EQ(r.rows_removed, 1u);
}

TEST(PresolveTest, IntegerBoundsRoundedInward) {
  Model m;
  VarId x = m.add_integer(0, 10, "x");
  VarId y = m.add_continuous(0, 10, "y");
  m.add_constraint(2.0 * x <= LinExpr(7.0));  // x <= 3.5 -> 3
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(12.0));
  m.set_objective(-1.0 * x);
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  for (std::size_t j = 0; j < r.reduced.num_vars(); ++j) {
    if (r.reduced.vars()[j].name == "x") {
      EXPECT_NEAR(r.reduced.vars()[j].ub, 3.0, 1e-9);
    }
  }
}

TEST(PresolveTest, BinaryImplicationChainPropagates) {
  // a <= 0 fixes a; row a + b >= 1 then forces b = 1.
  Model m;
  VarId a = m.add_binary("a");
  VarId b = m.add_binary("b");
  m.add_constraint(LinExpr(a) <= LinExpr(0.0));
  m.add_constraint(LinExpr(a) + LinExpr(b) >= LinExpr(1.0));
  m.set_objective(LinExpr(a) + LinExpr(b));
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.vars_fixed, 2u);
  EXPECT_TRUE(r.fixed[static_cast<std::size_t>(a.index)]);
  EXPECT_TRUE(r.fixed[static_cast<std::size_t>(b.index)]);
  EXPECT_EQ(r.fixed_value[static_cast<std::size_t>(a.index)], 0.0);
  EXPECT_EQ(r.fixed_value[static_cast<std::size_t>(b.index)], 1.0);
}

TEST(PresolveTest, ObjectiveConstantFromFixedVars) {
  Model m;
  VarId a = m.add_binary("a");
  VarId b = m.add_continuous(0, 4, "b");
  m.add_constraint(LinExpr(a) >= LinExpr(1.0));  // fixes a = 1
  m.add_constraint(LinExpr(a) + LinExpr(b) <= LinExpr(3.0));
  m.set_objective(5.0 * a + 1.0 * b);
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_NEAR(r.reduced.objective().constant(), 5.0, 1e-9);
  // Solving the reduced model must give the same optimum as the original.
  Solution orig = solve_milp(m, {.use_presolve = false});
  Solution red = solve_milp(r.reduced, {.use_presolve = false});
  ASSERT_TRUE(orig.optimal());
  ASSERT_TRUE(red.optimal());
  EXPECT_NEAR(orig.objective, red.objective, 1e-7);
}

TEST(PresolveTest, PreservesOptimalValueOnMixedModel) {
  Model m;
  VarId a = m.add_binary("a");
  VarId b = m.add_binary("b");
  VarId z = m.add_continuous(0, 10, "z");
  m.add_constraint(LinExpr(a) + LinExpr(b) >= LinExpr(1.0));
  m.add_constraint(LinExpr(z) >= 2.0 * a);
  m.add_constraint(LinExpr(z) >= 3.0 * b);
  m.set_objective(LinExpr(z) + LinExpr(a) + LinExpr(b));
  Solution with = solve_milp(m, {.use_presolve = true});
  Solution without = solve_milp(m, {.use_presolve = false});
  ASSERT_TRUE(with.optimal());
  ASSERT_TRUE(without.optimal());
  EXPECT_NEAR(with.objective, without.objective, 1e-7);
  EXPECT_TRUE(m.feasible(with.x, 1e-6));
}

}  // namespace
}  // namespace archex::milp
