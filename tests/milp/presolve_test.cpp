#include "milp/presolve.hpp"

#include <gtest/gtest.h>

#include "milp/branch_bound.hpp"

namespace archex::milp {
namespace {

TEST(PresolveTest, SingletonRowBecomesBound) {
  Model m;
  VarId x = m.add_continuous(0, 10, "x");
  VarId y = m.add_continuous(0, 10, "y");
  m.add_constraint(2.0 * x <= LinExpr(6.0));  // x <= 3
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(8.0));
  m.set_objective(LinExpr(x) + LinExpr(y));
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.reduced.num_constraints(), 1u);
  // x kept as a variable with tightened upper bound 3.
  bool found = false;
  for (std::size_t j = 0; j < r.reduced.num_vars(); ++j) {
    if (r.reduced.vars()[j].name == "x") {
      EXPECT_NEAR(r.reduced.vars()[j].ub, 3.0, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PresolveTest, EqualitySingletonFixesVariable) {
  Model m;
  VarId x = m.add_continuous(0, 10, "x");
  VarId y = m.add_continuous(0, 10, "y");
  m.add_constraint(LinExpr(x) == LinExpr(4.0));
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(6.0));
  m.set_objective(-1.0 * y);
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.vars_fixed, 1u);
  ASSERT_EQ(r.orig_of_reduced.size(), 1u);
  // Substitution: y <= 2.
  std::vector<double> xr = {2.0};
  std::vector<double> full = r.postsolve(xr);
  EXPECT_NEAR(full[static_cast<std::size_t>(x.index)], 4.0, 1e-9);
  EXPECT_NEAR(full[static_cast<std::size_t>(y.index)], 2.0, 1e-9);
}

TEST(PresolveTest, DetectsInfeasibleBounds) {
  Model m;
  VarId x = m.add_continuous(0, 1);
  m.add_constraint(LinExpr(x) >= LinExpr(5.0));
  m.set_objective(LinExpr(x));
  PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(PresolveTest, DetectsActivityInfeasibility) {
  Model m;
  VarId x = m.add_continuous(0, 1);
  VarId y = m.add_continuous(0, 1);
  m.add_constraint(LinExpr(x) + LinExpr(y) >= LinExpr(3.0));
  m.set_objective(LinExpr(x));
  PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(PresolveTest, RemovesRedundantRows) {
  Model m;
  VarId x = m.add_continuous(0, 1);
  VarId y = m.add_continuous(0, 1);
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(5.0));  // always true
  m.set_objective(LinExpr(x));
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.reduced.num_constraints(), 0u);
  EXPECT_EQ(r.rows_removed, 1u);
}

TEST(PresolveTest, IntegerBoundsRoundedInward) {
  Model m;
  VarId x = m.add_integer(0, 10, "x");
  VarId y = m.add_continuous(0, 10, "y");
  m.add_constraint(2.0 * x <= LinExpr(7.0));  // x <= 3.5 -> 3
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(12.0));
  m.set_objective(-1.0 * x);
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  for (std::size_t j = 0; j < r.reduced.num_vars(); ++j) {
    if (r.reduced.vars()[j].name == "x") {
      EXPECT_NEAR(r.reduced.vars()[j].ub, 3.0, 1e-9);
    }
  }
}

TEST(PresolveTest, BinaryImplicationChainPropagates) {
  // a <= 0 fixes a; row a + b >= 1 then forces b = 1.
  Model m;
  VarId a = m.add_binary("a");
  VarId b = m.add_binary("b");
  m.add_constraint(LinExpr(a) <= LinExpr(0.0));
  m.add_constraint(LinExpr(a) + LinExpr(b) >= LinExpr(1.0));
  m.set_objective(LinExpr(a) + LinExpr(b));
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.vars_fixed, 2u);
  EXPECT_TRUE(r.fixed[static_cast<std::size_t>(a.index)]);
  EXPECT_TRUE(r.fixed[static_cast<std::size_t>(b.index)]);
  EXPECT_EQ(r.fixed_value[static_cast<std::size_t>(a.index)], 0.0);
  EXPECT_EQ(r.fixed_value[static_cast<std::size_t>(b.index)], 1.0);
}

TEST(PresolveTest, ObjectiveConstantFromFixedVars) {
  Model m;
  VarId a = m.add_binary("a");
  VarId b = m.add_continuous(0, 4, "b");
  m.add_constraint(LinExpr(a) >= LinExpr(1.0));  // fixes a = 1
  m.add_constraint(LinExpr(a) + LinExpr(b) <= LinExpr(3.0));
  m.set_objective(5.0 * a + 1.0 * b);
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_NEAR(r.reduced.objective().constant(), 5.0, 1e-9);
  // Solving the reduced model must give the same optimum as the original.
  Solution orig = solve_milp(m, {.use_presolve = false});
  Solution red = solve_milp(r.reduced, {.use_presolve = false});
  ASSERT_TRUE(orig.optimal());
  ASSERT_TRUE(red.optimal());
  EXPECT_NEAR(orig.objective, red.objective, 1e-7);
}

TEST(PresolveTest, PreservesOptimalValueOnMixedModel) {
  Model m;
  VarId a = m.add_binary("a");
  VarId b = m.add_binary("b");
  VarId z = m.add_continuous(0, 10, "z");
  m.add_constraint(LinExpr(a) + LinExpr(b) >= LinExpr(1.0));
  m.add_constraint(LinExpr(z) >= 2.0 * a);
  m.add_constraint(LinExpr(z) >= 3.0 * b);
  m.set_objective(LinExpr(z) + LinExpr(a) + LinExpr(b));
  Solution with = solve_milp(m, {.use_presolve = true});
  Solution without = solve_milp(m, {.use_presolve = false});
  ASSERT_TRUE(with.optimal());
  ASSERT_TRUE(without.optimal());
  EXPECT_NEAR(with.objective, without.objective, 1e-7);
  EXPECT_TRUE(m.feasible(with.x, 1e-6));
}

// --- propagate_bounds: the interval-arithmetic fixpoint engine -------------

TEST(PropagateBoundsTest, EmptyRowVacuousAndInfeasible) {
  Model m;
  m.add_continuous(0, 1, "x");
  m.add_constraint(LinExpr{}, Sense::LE, 1.0, "vacuous");
  Propagation ok = propagate_bounds(m);
  EXPECT_FALSE(ok.infeasible);
  EXPECT_TRUE(ok.converged);

  m.add_constraint(LinExpr{}, Sense::GE, 2.0, "impossible");  // 0 >= 2
  Propagation bad = propagate_bounds(m);
  EXPECT_TRUE(bad.infeasible);
  EXPECT_EQ(bad.infeasible_row, 1);
}

TEST(PropagateBoundsTest, FreeColumnReceivesBoundsFromRow) {
  Model m;
  VarId x = m.add_continuous(-kInf, kInf, "x");
  VarId y = m.add_continuous(0, 4, "y");
  // x + y <= 10 with y >= 0 implies x <= 10; x + y >= 2 implies x >= -2.
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.add_constraint(LinExpr(x) + LinExpr(y) >= LinExpr(2.0));
  Propagation p = propagate_bounds(m);
  ASSERT_FALSE(p.infeasible);
  const auto j = static_cast<std::size_t>(x.index);
  EXPECT_NEAR(p.ub[j], 10.0, 1e-9);
  EXPECT_NEAR(p.lb[j], -2.0, 1e-9);
}

TEST(PropagateBoundsTest, TwoFreeColumnsBlockPropagationButNotDetection) {
  Model m;
  VarId x = m.add_continuous(-kInf, kInf, "x");
  VarId y = m.add_continuous(-kInf, kInf, "y");
  // Both activity ends are infinite: nothing can be tightened and nothing is
  // provable — the pass must terminate cleanly with the box unchanged.
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(5.0));
  Propagation p = propagate_bounds(m);
  EXPECT_FALSE(p.infeasible);
  EXPECT_TRUE(p.converged);
  EXPECT_EQ(p.bounds_tightened, 0u);
  EXPECT_EQ(p.lb[0], -kInf);
  EXPECT_EQ(p.ub[1], kInf);
}

TEST(PropagateBoundsTest, InfiniteActivityStillBoundsTheUnboundedColumn) {
  Model m;
  VarId x = m.add_continuous(-kInf, kInf, "x");
  VarId y = m.add_continuous(1, 3, "y");
  // min-activity is -inf because of x, but x itself still receives
  // x <= 8 - min(y) = 7 (exactly one infinite contribution, its own).
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(8.0));
  Propagation p = propagate_bounds(m);
  ASSERT_FALSE(p.infeasible);
  EXPECT_NEAR(p.ub[static_cast<std::size_t>(x.index)], 7.0, 1e-9);
}

TEST(PropagateBoundsTest, EqualityRowFixesVariable) {
  Model m;
  VarId x = m.add_continuous(0, 10, "x");
  VarId y = m.add_continuous(2, 2, "y");  // fixed on entry
  m.add_constraint(LinExpr(x) + LinExpr(y) == LinExpr(6.0));
  Propagation p = propagate_bounds(m);
  ASSERT_FALSE(p.infeasible);
  const auto j = static_cast<std::size_t>(x.index);
  EXPECT_NEAR(p.lb[j], 4.0, 1e-9);
  EXPECT_NEAR(p.ub[j], 4.0, 1e-9);
  // Only x counts as newly fixed; y was fixed before the pass ran.
  EXPECT_EQ(p.vars_fixed, 1u);
}

TEST(PropagateBoundsTest, CyclicTighteningChainTerminates) {
  Model m;
  VarId x = m.add_continuous(0, 100, "x");
  VarId y = m.add_continuous(0, 100, "y");
  // x <= 0.9 y and y <= 0.9 x: the only solution is (0, 0), approached
  // geometrically — each pass shrinks the box by 0.81. The relative-
  // improvement guard must cut the chain off at the pass cap at the latest,
  // never loop unboundedly.
  m.add_constraint(LinExpr(x) - 0.9 * y <= LinExpr(0.0));
  m.add_constraint(LinExpr(y) - 0.9 * x <= LinExpr(0.0));
  PropagateOptions opt;
  opt.max_passes = 16;
  Propagation p = propagate_bounds(m, opt);
  EXPECT_FALSE(p.infeasible);
  EXPECT_LE(p.passes, 16);
  // The chain did make progress toward 0.
  EXPECT_LT(p.ub[0], 100.0);
}

TEST(PropagateBoundsTest, ChainProvesInfeasibilityAcrossRows) {
  Model m;
  VarId x = m.add_continuous(0, 100, "x");
  VarId y = m.add_continuous(0, 100, "y");
  m.add_constraint(LinExpr(x) <= LinExpr(3.0), "cap");
  m.add_constraint(LinExpr(y) - LinExpr(x) <= LinExpr(0.0), "link");
  m.add_constraint(LinExpr(y) >= LinExpr(5.0), "demand");
  PropagateOptions opt;
  opt.record_changes = true;
  Propagation p = propagate_bounds(m, opt);
  EXPECT_TRUE(p.infeasible);
  EXPECT_EQ(p.infeasible_row, 2);
  EXPECT_FALSE(p.changes.empty());
}

TEST(PropagateBoundsTest, RowMaskRestrictsThePass) {
  Model m;
  VarId x = m.add_continuous(0, 100, "x");
  m.add_constraint(LinExpr(x) <= LinExpr(3.0));
  m.add_constraint(LinExpr(x) >= LinExpr(5.0));
  const std::vector<char> first_only = {1, 0};
  Propagation p = propagate_bounds(m, {}, &first_only);
  EXPECT_FALSE(p.infeasible);
  EXPECT_NEAR(p.ub[0], 3.0, 1e-9);
  const std::vector<char> both = {1, 1};
  EXPECT_TRUE(propagate_bounds(m, {}, &both).infeasible);
}

// --- the strengthen step inside presolve -----------------------------------

TEST(PresolveStrengthenTest, CountsTighteningsAndFixes) {
  Model m;
  VarId x = m.add_continuous(0, 100, "x");
  VarId y = m.add_continuous(0, 100, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.add_constraint(LinExpr(x) == LinExpr(4.0));
  m.set_objective(LinExpr(x) + LinExpr(y));
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_GT(r.strengthen_tightened, 0u);
  EXPECT_GE(r.strengthen_fixed, 1u);  // x pinned by the equality
}

TEST(PresolveStrengthenTest, OffByOptionMatchesOldBehavior) {
  Model m;
  VarId x = m.add_continuous(0, 100, "x");
  VarId y = m.add_continuous(0, 100, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.set_objective(LinExpr(x) + LinExpr(y));
  PresolveOptions opt;
  opt.strengthen = false;
  PresolveResult r = presolve(m, opt);
  EXPECT_EQ(r.strengthen_tightened, 0u);
  EXPECT_EQ(r.strengthen_fixed, 0u);
}

TEST(PresolveStrengthenTest, ProvesInfeasibilityBeforeReduction) {
  Model m;
  VarId x = m.add_continuous(0, 100, "x");
  VarId y = m.add_continuous(0, 100, "y");
  m.add_constraint(LinExpr(x) <= LinExpr(3.0));
  m.add_constraint(LinExpr(y) - LinExpr(x) <= LinExpr(0.0));
  m.add_constraint(LinExpr(y) >= LinExpr(5.0));
  m.set_objective(LinExpr(x));
  PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(PresolveStrengthenTest, GcdRoundsRhsOnAllIntegerRow) {
  Model m;
  VarId a = m.add_integer(0, 10, "a");
  VarId b = m.add_integer(0, 10, "b");
  // 4a + 6b <= 9: gcd 2, so the reachable activities are even and the rhs
  // tightens to 8.
  m.add_constraint(4.0 * a + 6.0 * b <= LinExpr(9.0));
  m.set_objective(-1.0 * a - 1.0 * b);
  PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_GE(r.rhs_strengthened, 1u);
  bool found = false;
  for (std::size_t i = 0; i < r.reduced.num_constraints(); ++i) {
    const LinConstraint& c = r.reduced.constraint(i);
    if (c.expr.terms().size() == 2) {
      EXPECT_NEAR(c.rhs, 8.0, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // The optimum must be unaffected: max a+b s.t. 4a+6b <= 8 is 2 (a=2,b=0).
  Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -2.0, 1e-7);
}

TEST(PresolveStrengthenTest, GcdOffLatticeEqualityIsInfeasible) {
  Model m;
  VarId a = m.add_integer(0, 10, "a");
  VarId b = m.add_integer(0, 10, "b");
  m.add_constraint(4.0 * a + 6.0 * b == LinExpr(7.0));  // odd rhs, even lattice
  m.set_objective(LinExpr(a));
  PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(PresolveStrengthenTest, CountersReachSolutionMetrics) {
  Model m;
  VarId x = m.add_continuous(0, 100, "x");
  VarId y = m.add_continuous(0, 100, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.add_constraint(LinExpr(x) == LinExpr(4.0));
  m.set_objective(LinExpr(x) + LinExpr(y));
  Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  const auto tightened = s.metrics.find("milp.presolve.strengthen_tightened");
  ASSERT_NE(tightened, s.metrics.end());
  EXPECT_GT(tightened->second, 0.0);
}

}  // namespace
}  // namespace archex::milp
