#include "milp/expr.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "milp/model.hpp"

namespace archex::milp {
namespace {

TEST(LinExprTest, DefaultIsZero) {
  LinExpr e;
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant(), 0.0);
  EXPECT_EQ(e.size(), 0u);
}

TEST(LinExprTest, SingleVariable) {
  LinExpr e = VarId{3};
  ASSERT_EQ(e.size(), 1u);
  EXPECT_EQ(e.terms()[0].var.index, 3);
  EXPECT_EQ(e.terms()[0].coef, 1.0);
}

TEST(LinExprTest, MergesDuplicateTerms) {
  LinExpr e{{VarId{1}, 2.0}, {VarId{0}, 1.0}, {VarId{1}, 3.0}};
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e.coef_of(VarId{0}), 1.0);
  EXPECT_EQ(e.coef_of(VarId{1}), 5.0);
}

TEST(LinExprTest, DropsZeroCoefficients) {
  LinExpr e{{VarId{0}, 2.0}, {VarId{0}, -2.0}};
  EXPECT_TRUE(e.is_constant());
}

TEST(LinExprTest, AdditionMergesSortedLists) {
  LinExpr a{{VarId{0}, 1.0}, {VarId{2}, 2.0}};
  LinExpr b{{VarId{1}, 3.0}, {VarId{2}, -2.0}};
  LinExpr c = a + b;
  EXPECT_EQ(c.coef_of(VarId{0}), 1.0);
  EXPECT_EQ(c.coef_of(VarId{1}), 3.0);
  EXPECT_EQ(c.coef_of(VarId{2}), 0.0);
  EXPECT_EQ(c.size(), 2u);
}

TEST(LinExprTest, ScalarArithmetic) {
  LinExpr e = 2.0 * VarId{0} + LinExpr(1.5);
  e *= 2.0;
  EXPECT_EQ(e.coef_of(VarId{0}), 4.0);
  EXPECT_EQ(e.constant(), 3.0);
  LinExpr neg = -e;
  EXPECT_EQ(neg.coef_of(VarId{0}), -4.0);
  EXPECT_EQ(neg.constant(), -3.0);
}

TEST(LinExprTest, SubtractionOfSelfIsZero) {
  LinExpr a{{VarId{0}, 1.0}, {VarId{5}, -2.5}};
  LinExpr z = a - a;
  EXPECT_TRUE(z.is_constant());
  EXPECT_EQ(z.constant(), 0.0);
}

TEST(LinExprTest, Evaluate) {
  LinExpr e = 2.0 * VarId{0} - 1.0 * VarId{1} + LinExpr(4.0);
  std::vector<double> x = {3.0, 5.0};
  EXPECT_DOUBLE_EQ(e.evaluate(x), 2 * 3 - 5 + 4);
}

TEST(LinExprTest, MultiplyByZeroClears) {
  LinExpr e = 2.0 * VarId{0} + LinExpr(7.0);
  e *= 0.0;
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant(), 0.0);
}

TEST(LinConstraintTest, ConstantFoldedIntoRhs) {
  LinExpr e = 1.0 * VarId{0} + LinExpr(2.0);
  LinConstraint c(e, Sense::LE, 5.0);
  EXPECT_EQ(c.rhs, 3.0);
  EXPECT_EQ(c.expr.constant(), 0.0);
}

TEST(LinConstraintTest, ComparisonOperators) {
  LinConstraint c = LinExpr(VarId{0}) + LinExpr(VarId{1}) <= LinExpr(3.0);
  EXPECT_EQ(c.sense, Sense::LE);
  EXPECT_EQ(c.rhs, 3.0);
  EXPECT_EQ(c.expr.size(), 2u);

  LinConstraint g = 2.0 * VarId{0} >= LinExpr(VarId{1}) + LinExpr(1.0);
  EXPECT_EQ(g.sense, Sense::GE);
  EXPECT_EQ(g.rhs, 1.0);
  EXPECT_EQ(g.expr.coef_of(VarId{1}), -1.0);

  LinConstraint q = LinExpr(VarId{2}) == LinExpr(4.0);
  EXPECT_EQ(q.sense, Sense::EQ);
  EXPECT_EQ(q.rhs, 4.0);
}

TEST(LinConstraintTest, SatisfiedChecksSense) {
  LinConstraint le = LinExpr(VarId{0}) <= LinExpr(2.0);
  std::vector<double> x = {2.0};
  EXPECT_TRUE(le.satisfied(x));
  x[0] = 2.1;
  EXPECT_FALSE(le.satisfied(x, 1e-3));

  LinConstraint eq = LinExpr(VarId{0}) == LinExpr(2.0);
  x[0] = 2.0;
  EXPECT_TRUE(eq.satisfied(x));
  x[0] = 1.9;
  EXPECT_FALSE(eq.satisfied(x, 1e-3));
}

TEST(ModelTest, AddVarValidatesBounds) {
  Model m;
  EXPECT_THROW(m.add_continuous(2.0, 1.0), std::invalid_argument);
  VarId v = m.add_binary("b");
  EXPECT_EQ(m.var(v).lb, 0.0);
  EXPECT_EQ(m.var(v).ub, 1.0);
  EXPECT_TRUE(m.var(v).is_integral());
}

TEST(ModelTest, RejectsUnknownVariableInConstraint) {
  Model m;
  (void)m.add_binary();
  EXPECT_THROW(m.add_constraint(LinExpr(VarId{7}) <= LinExpr(1.0)), std::invalid_argument);
}

TEST(ModelTest, StatsCountEverything) {
  Model m;
  VarId a = m.add_binary("a");
  VarId b = m.add_continuous(0, 10, "b");
  VarId c = m.add_integer(0, 5, "c");
  m.add_constraint(LinExpr(a) + LinExpr(b) <= LinExpr(3.0));
  m.add_constraint(LinExpr(b) + LinExpr(c) >= LinExpr(1.0));
  m.set_objective(LinExpr(a) + LinExpr(c));
  ModelStats s = m.stats();
  EXPECT_EQ(s.num_vars, 3u);
  EXPECT_EQ(s.num_binary, 1u);
  EXPECT_EQ(s.num_integer, 1u);
  EXPECT_EQ(s.num_continuous, 1u);
  EXPECT_EQ(s.num_constraints, 2u);
  EXPECT_EQ(s.num_nonzeros, 4u);
  EXPECT_EQ(s.standard_form_lines, 4u + 2u + 3u);
}

TEST(ModelTest, FeasibleChecksBoundsIntegralityAndRows) {
  Model m;
  VarId a = m.add_binary("a");
  VarId b = m.add_continuous(0, 10, "b");
  m.add_constraint(LinExpr(a) + LinExpr(b) <= LinExpr(5.0));
  EXPECT_TRUE(m.feasible({1.0, 4.0}));
  EXPECT_FALSE(m.feasible({0.5, 4.0}));   // fractional binary
  EXPECT_FALSE(m.feasible({1.0, 11.0}));  // bound violation
  EXPECT_FALSE(m.feasible({1.0, 4.5}));   // row violation
}

TEST(ModelTest, WriteLpProducesSections) {
  Model m;
  VarId a = m.add_binary("pick");
  m.add_constraint(LinExpr(a) <= LinExpr(1.0), "cap");
  m.set_objective(LinExpr(a));
  std::ostringstream os;
  m.write_lp(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("pick"), std::string::npos);
  EXPECT_NE(text.find("Binaries"), std::string::npos);
}

TEST(ModelTest, TightenBoundsIntersects) {
  Model m;
  VarId v = m.add_continuous(0, 10);
  m.tighten_bounds(v, 2, 12);
  EXPECT_EQ(m.var(v).lb, 2.0);
  EXPECT_EQ(m.var(v).ub, 10.0);
}

}  // namespace
}  // namespace archex::milp
