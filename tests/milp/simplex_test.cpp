#include "milp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "milp/model.hpp"

namespace archex::milp {
namespace {

TEST(SimplexTest, TrivialBoundedMinimum) {
  Model m;
  VarId x = m.add_continuous(1.0, 5.0, "x");
  m.set_objective(LinExpr(x));
  Solution s = solve_lp_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-8);
  EXPECT_NEAR(s.value(x), 1.0, 1e-8);
}

TEST(SimplexTest, ClassicTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier-Lieberman)
  // Optimum: x = 2, y = 6, obj = 36.
  Model m;
  VarId x = m.add_continuous(0, kInf, "x");
  VarId y = m.add_continuous(0, kInf, "y");
  m.add_constraint(LinExpr(x) <= LinExpr(4.0));
  m.add_constraint(2.0 * y <= LinExpr(12.0));
  m.add_constraint(3.0 * x + 2.0 * y <= LinExpr(18.0));
  m.set_objective(3.0 * x + 5.0 * y, ObjectiveSense::Maximize);
  Solution s = solve_lp_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.value(x), 2.0, 1e-7);
  EXPECT_NEAR(s.value(y), 6.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + 2y s.t. x + y == 10, x - y == 2  =>  x=6, y=4, obj=14.
  Model m;
  VarId x = m.add_continuous(0, kInf);
  VarId y = m.add_continuous(0, kInf);
  m.add_constraint(LinExpr(x) + LinExpr(y) == LinExpr(10.0));
  m.add_constraint(LinExpr(x) - LinExpr(y) == LinExpr(2.0));
  m.set_objective(LinExpr(x) + 2.0 * y);
  Solution s = solve_lp_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 14.0, 1e-7);
  EXPECT_NEAR(s.value(x), 6.0, 1e-7);
  EXPECT_NEAR(s.value(y), 4.0, 1e-7);
}

TEST(SimplexTest, GreaterEqualNeedsPhaseOne) {
  // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6, x,y >= 0.
  // Vertices: (4,0) obj 8; (3,1) obj 9; (0,4)... check: optimum (4,0)? x+3y>=6:
  // 4+0=4 < 6 infeasible. Candidates: intersection (3,1): obj 9; (6,0): obj 12;
  // (0,4): obj 12; (0,2): x+y=2<4 infeasible. Optimum (3,1) obj 9.
  Model m;
  VarId x = m.add_continuous(0, kInf);
  VarId y = m.add_continuous(0, kInf);
  m.add_constraint(LinExpr(x) + LinExpr(y) >= LinExpr(4.0));
  m.add_constraint(LinExpr(x) + 3.0 * y >= LinExpr(6.0));
  m.set_objective(2.0 * x + 3.0 * y);
  Solution s = solve_lp_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasible) {
  Model m;
  VarId x = m.add_continuous(0, 1);
  m.add_constraint(LinExpr(x) >= LinExpr(2.0));
  m.set_objective(LinExpr(x));
  Solution s = solve_lp_relaxation(m);
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(SimplexTest, DetectsInfeasibleSystem) {
  Model m;
  VarId x = m.add_continuous(0, kInf);
  VarId y = m.add_continuous(0, kInf);
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(1.0));
  m.add_constraint(LinExpr(x) + LinExpr(y) >= LinExpr(3.0));
  m.set_objective(LinExpr(x));
  Solution s = solve_lp_relaxation(m);
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  VarId x = m.add_continuous(0, kInf);
  VarId y = m.add_continuous(0, kInf);
  m.add_constraint(LinExpr(x) - LinExpr(y) <= LinExpr(1.0));
  m.set_objective(-1.0 * x);
  Solution s = solve_lp_relaxation(m);
  EXPECT_EQ(s.status, SolveStatus::Unbounded);
}

TEST(SimplexTest, FreeVariables) {
  // min x + y with free x, y s.t. x + y >= -3, x - y == 1.
  // x + y = -3 at optimum; with x - y = 1: x = -1, y = -2; obj = -3.
  Model m;
  VarId x = m.add_continuous(-kInf, kInf);
  VarId y = m.add_continuous(-kInf, kInf);
  m.add_constraint(LinExpr(x) + LinExpr(y) >= LinExpr(-3.0));
  m.add_constraint(LinExpr(x) - LinExpr(y) == LinExpr(1.0));
  m.set_objective(LinExpr(x) + LinExpr(y));
  Solution s = solve_lp_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -3.0, 1e-7);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x s.t. x >= -5 (bound), x + y == 0, y in [-2, 2]  =>  x = -2.
  Model m;
  VarId x = m.add_continuous(-5, kInf);
  VarId y = m.add_continuous(-2, 2);
  m.add_constraint(LinExpr(x) + LinExpr(y) == LinExpr(0.0));
  m.set_objective(LinExpr(x));
  Solution s = solve_lp_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-7);
}

TEST(SimplexTest, ObjectiveConstantIncluded) {
  Model m;
  VarId x = m.add_continuous(0, 1);
  m.set_objective(LinExpr(x) + LinExpr(10.0));
  Solution s = solve_lp_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-8);
}

TEST(SimplexTest, DegenerateLpTerminates) {
  // Klee-Minty-ish degenerate structure: many redundant constraints at a vertex.
  Model m;
  VarId x = m.add_continuous(0, kInf);
  VarId y = m.add_continuous(0, kInf);
  for (int i = 0; i < 20; ++i) {
    m.add_constraint(LinExpr(x) + (1.0 + i * 1e-9) * y <= LinExpr(1.0));
  }
  m.set_objective(-1.0 * x - 1.0 * y);
  Solution s = solve_lp_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-6);
}

TEST(SimplexTest, DualReoptimizeAfterBoundChangeMatchesColdSolve) {
  // min -x - 2y s.t. x + y <= 10, x <= 7, y <= 6.
  Model m;
  VarId x = m.add_continuous(0, 7);
  VarId y = m.add_continuous(0, 6);
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.set_objective(-1.0 * x - 2.0 * y);
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  EXPECT_NEAR(lp.objective_value(), -16.0, 1e-7);  // x=4, y=6

  // Tighten x <= 2 and warm-start the dual simplex.
  lp.set_bounds(0, 0.0, 2.0);
  ASSERT_EQ(lp.reoptimize_dual(), SolveStatus::Optimal);
  EXPECT_NEAR(lp.objective_value(), -14.0, 1e-7);  // x=2, y=6

  // Restore and reoptimize back to the original optimum.
  lp.set_bounds(0, 0.0, 7.0);
  ASSERT_EQ(lp.reoptimize_dual(), SolveStatus::Optimal);
  EXPECT_NEAR(lp.objective_value(), -16.0, 1e-7);
}

TEST(SimplexTest, DualReoptimizeDetectsInfeasibleBounds) {
  Model m;
  VarId x = m.add_continuous(0, 5);
  VarId y = m.add_continuous(0, 5);
  m.add_constraint(LinExpr(x) + LinExpr(y) >= LinExpr(8.0));
  m.set_objective(LinExpr(x) + LinExpr(y));
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  lp.set_bounds(0, 0.0, 1.0);
  lp.set_bounds(1, 0.0, 1.0);
  EXPECT_EQ(lp.reoptimize_dual(), SolveStatus::Infeasible);
}

TEST(SimplexTest, NoConstraintsRestsAtCostOptimalBounds) {
  Model m;
  VarId x = m.add_continuous(-1, 3);
  VarId y = m.add_continuous(2, 9);
  m.set_objective(LinExpr(x) - LinExpr(y));
  Solution s = solve_lp_relaxation(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -1.0 - 9.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Property sweep: random transportation-style LPs have a known optimum
// computable greedily when costs are chosen to make the greedy optimal
// (single supply). We instead cross-check primal solutions for feasibility
// and complementary objective consistency on random dense LPs.
// ---------------------------------------------------------------------------

class RandomLpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpProperty, SolutionIsFeasibleAndBoundedByVertexEnumeration) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> coef(-3.0, 3.0);
  std::uniform_real_distribution<double> rhs_d(1.0, 8.0);

  // 3 variables in [0, 4], 4 <= rows, minimize random cost.
  Model m;
  std::vector<VarId> v;
  for (int j = 0; j < 3; ++j) v.push_back(m.add_continuous(0, 4));
  for (int i = 0; i < 4; ++i) {
    LinExpr e;
    for (int j = 0; j < 3; ++j) e += coef(rng) * v[j];
    m.add_constraint(std::move(e), Sense::LE, rhs_d(rng));
  }
  LinExpr obj;
  std::vector<double> c(3);
  for (int j = 0; j < 3; ++j) {
    c[j] = coef(rng);
    obj += c[j] * v[j];
  }
  m.set_objective(obj);

  Solution s = solve_lp_relaxation(m);
  ASSERT_NE(s.status, SolveStatus::NumericalError);
  if (s.status != SolveStatus::Optimal) return;  // infeasible/unbounded cases pass

  // The reported point must be feasible and match its objective.
  EXPECT_TRUE(m.feasible(s.x, 1e-6));
  double val = 0;
  for (int j = 0; j < 3; ++j) val += c[j] * s.x[static_cast<std::size_t>(j)];
  EXPECT_NEAR(val, s.objective, 1e-6);

  // Grid search lower-bounds the quality: no grid point may beat the optimum.
  const int grid = 8;
  for (int a = 0; a <= grid; ++a) {
    for (int b = 0; b <= grid; ++b) {
      for (int d = 0; d <= grid; ++d) {
        std::vector<double> x = {4.0 * a / grid, 4.0 * b / grid, 4.0 * d / grid};
        if (!m.feasible(x, 1e-9)) continue;
        double gv = 0;
        for (int j = 0; j < 3; ++j) gv += c[j] * x[static_cast<std::size_t>(j)];
        EXPECT_GE(gv, s.objective - 1e-6)
            << "grid point beats reported LP optimum (seed " << GetParam() << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace archex::milp
