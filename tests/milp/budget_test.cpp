#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>

#include "milp/budget.hpp"

namespace archex::milp {
namespace {

using Clock = Budget::Clock;

TEST(BudgetTest, DefaultIsUnlimited) {
  const Budget b;
  EXPECT_FALSE(b.limited());
  EXPECT_EQ(b.deadline_from(Clock::now()), Clock::time_point::max());
  EXPECT_EQ(Budget::unlimited().seconds, std::numeric_limits<double>::infinity());
}

TEST(BudgetTest, ConstructorsAgreeOnUnits) {
  EXPECT_DOUBLE_EQ(Budget::of_seconds(2.5).seconds, 2.5);
  EXPECT_DOUBLE_EQ(Budget::of_ms(2500.0).seconds, 2.5);
  EXPECT_TRUE(Budget::of_seconds(2.5).limited());
}

TEST(BudgetTest, DeadlineFromIsTheStartPlusTheAllowance) {
  const Clock::time_point start = Clock::now();
  const Clock::time_point d = Budget::of_seconds(1.5).deadline_from(start);
  const double delta = std::chrono::duration<double>(d - start).count();
  EXPECT_NEAR(delta, 1.5, 1e-6);
}

TEST(BudgetTest, NegativeBudgetClampsToStart) {
  const Clock::time_point start = Clock::now();
  EXPECT_EQ(Budget::of_seconds(-3.0).deadline_from(start), start);
  EXPECT_EQ(Budget::of_seconds(0.0).deadline_from(start), start);
}

TEST(BudgetTest, NanBehavesAsUnlimited) {
  const Budget b = Budget::of_seconds(std::nan(""));
  EXPECT_FALSE(b.limited());
  EXPECT_EQ(b.deadline_from(Clock::now()), Clock::time_point::max());
}

TEST(BudgetTest, HugeBudgetSaturatesInsteadOfOverflowing) {
  // A duration cast of 1e18 seconds would overflow steady_clock's range;
  // the conversion point must saturate to the "never" sentinel.
  const Budget b = Budget::of_seconds(1e18);
  EXPECT_TRUE(b.limited());
  EXPECT_EQ(b.deadline_from(Clock::now()), Clock::time_point::max());
}

TEST(BudgetTest, TighterPicksTheSmallerAllowance) {
  EXPECT_DOUBLE_EQ(Budget::tighter(Budget::of_seconds(2.0), Budget::of_seconds(5.0)).seconds,
                   2.0);
  EXPECT_DOUBLE_EQ(Budget::tighter(Budget::unlimited(), Budget::of_seconds(5.0)).seconds,
                   5.0);
  // NaN loses against anything, including the unlimited default.
  EXPECT_DOUBLE_EQ(
      Budget::tighter(Budget::of_seconds(std::nan("")), Budget::of_seconds(5.0)).seconds,
      5.0);
  EXPECT_FALSE(Budget::tighter(Budget::of_seconds(std::nan("")), Budget::unlimited())
                   .limited());
}

}  // namespace
}  // namespace archex::milp
