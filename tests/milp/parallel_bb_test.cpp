/// Tests for the parallel branch & bound (work-stealing node pool) and the
/// simplex APIs underneath it: basis export/install warm starts, the
/// reoptimize_dual repair and cold-restart paths, and determinism of the
/// optimum across thread counts on the EPN and knapsack fixtures.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "domains/epn.hpp"
#include "milp/branch_bound.hpp"
#include "milp/simplex.hpp"

namespace archex::milp {
namespace {

/// Deterministic binary knapsack used by the determinism suite.
Model knapsack_fixture(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(1, 9);
  Model m;
  std::vector<VarId> v;
  LinExpr tw, tv;
  for (int j = 0; j < n; ++j) {
    v.push_back(m.add_binary());
    tw += static_cast<double>(w(rng)) * v.back();
    tv += static_cast<double>(w(rng)) * v.back();
  }
  m.add_constraint(tw <= LinExpr(2.5 * n));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

// ---------------------------------------------------------------------------
// Basis export / install
// ---------------------------------------------------------------------------

TEST(SimplexBasisTest, ExportLoadRoundTripReproducesOptimum) {
  // min -x - 2y s.t. x + y <= 10, x in [0,7], y in [0,6].
  Model m;
  VarId x = m.add_continuous(0, 7);
  VarId y = m.add_continuous(0, 6);
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.set_objective(-1.0 * x - 2.0 * y);
  SimplexSolver donor(m);
  ASSERT_EQ(donor.solve_primal(), SolveStatus::Optimal);
  const SimplexSolver::Basis basis = donor.export_basis();

  // A never-solved solver adopts the basis and confirms optimality with a
  // warm dual solve (no cold two-phase start).
  SimplexSolver fresh(m);
  ASSERT_TRUE(fresh.load_basis(basis));
  ASSERT_EQ(fresh.reoptimize_dual(), SolveStatus::Optimal);
  EXPECT_NEAR(fresh.objective_value(), donor.objective_value(), 1e-9);
  EXPECT_EQ(fresh.reopt_stats().cold, 0);
}

TEST(SimplexBasisTest, LoadedBasisWarmStartsUnderTightenedBounds) {
  // The parallel-worker kernel: install a parent basis, then branch (tighten
  // bounds) and reoptimize with the dual simplex.
  Model m;
  VarId x = m.add_continuous(0, 7);
  VarId y = m.add_continuous(0, 6);
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.set_objective(-1.0 * x - 2.0 * y);
  SimplexSolver donor(m);
  ASSERT_EQ(donor.solve_primal(), SolveStatus::Optimal);
  const SimplexSolver::Basis basis = donor.export_basis();

  SimplexSolver thief(m);
  thief.set_bounds(0, 0.0, 2.0);  // the "stolen node" tightens x <= 2
  ASSERT_TRUE(thief.load_basis(basis));
  ASSERT_EQ(thief.reoptimize_dual(), SolveStatus::Optimal);
  EXPECT_NEAR(thief.objective_value(), -14.0, 1e-7);  // x=2, y=6
}

TEST(SimplexBasisTest, RejectsForeignBasisShape) {
  Model a;
  a.add_continuous(0, 1);
  Model b;
  VarId bx = b.add_continuous(0, 1);
  VarId by = b.add_continuous(0, 1);
  b.add_constraint(LinExpr(bx) + LinExpr(by) <= LinExpr(1.0));
  SimplexSolver sa(a);
  ASSERT_EQ(sa.solve_primal(), SolveStatus::Optimal);
  SimplexSolver sb(b);
  EXPECT_FALSE(sb.load_basis(sa.export_basis()));
  // A failed install leaves the solver cold but usable.
  EXPECT_EQ(sb.solve_primal(), SolveStatus::Optimal);
}

// ---------------------------------------------------------------------------
// reoptimize_dual repair paths
// ---------------------------------------------------------------------------

TEST(WarmStartRepairTest, BoundRelaxationTakesRepairBranch) {
  // Bound changes break dual feasibility when they flip a nonbasic resting
  // status: at the optimum below, y rests AtUpper with reduced cost -1
  // (correct for a minimize upper bound). Dropping y's upper bound to +inf
  // moves it to AtLower, where d = -1 has the wrong sign — the held basis is
  // dual infeasible and reoptimize_dual must take the repair path (dual loop
  // as primal repair + warm primal cleanup) rather than the fast dual.
  Model m;
  VarId x = m.add_continuous(0, 7);
  VarId y = m.add_continuous(0, 6);
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.set_objective(-1.0 * x - 2.0 * y);
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  EXPECT_NEAR(lp.objective_value(), -16.0, 1e-7);  // x=4, y=6

  lp.set_bounds(1, 0.0, kInf);  // y now only capped by the row
  ASSERT_EQ(lp.reoptimize_dual(), SolveStatus::Optimal);
  EXPECT_NEAR(lp.objective_value(), -20.0, 1e-7);  // x=0, y=10
  EXPECT_GE(lp.reopt_stats().repaired, 1)
      << "status-flipping relaxation should have taken the repair path";
  EXPECT_EQ(lp.reopt_stats().cold, 0);
}

TEST(WarmStartRepairTest, RepairConfirmsInfeasibilityWithColdRestart) {
  // From a deliberately untrusted (dual-infeasible) basis, an "infeasible"
  // verdict of the repair dual loop must be confirmed by a cold restart
  // (reopt_stats().cold) — and the verdict must still be correct.
  Model m;
  VarId x = m.add_continuous(0, 7);
  VarId y = m.add_continuous(0, 6);
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(10.0));
  m.set_objective(-1.0 * x - 2.0 * y);
  SimplexSolver lp(m);
  ASSERT_EQ(lp.solve_primal(), SolveStatus::Optimal);
  EXPECT_NEAR(lp.objective_value(), -16.0, 1e-7);  // x=4, y=6

  // In one batch: flip y's resting status (AtUpper -> AtLower via the
  // infinite upper bound) so the held basis goes dual infeasible, and raise
  // both lower bounds so x + y >= 11 contradicts the row x + y <= 10.
  lp.set_bounds(1, 5.0, kInf);
  lp.set_bounds(0, 6.0, 7.0);
  EXPECT_EQ(lp.reoptimize_dual(), SolveStatus::Infeasible);
  EXPECT_GE(lp.reopt_stats().repaired, 1);
  EXPECT_GE(lp.reopt_stats().cold, 1)
      << "infeasibility from an untrusted basis must be confirmed cold";

  // The solver remains usable after the cold confirmation.
  lp.set_bounds(0, 0.0, 7.0);
  lp.set_bounds(1, 0.0, 6.0);
  ASSERT_EQ(lp.reoptimize_dual(), SolveStatus::Optimal);
  EXPECT_NEAR(lp.objective_value(), -16.0, 1e-7);
}

// ---------------------------------------------------------------------------
// Parallel search: determinism of the optimum across thread counts
// ---------------------------------------------------------------------------

TEST(ParallelBBTest, KnapsackSameOptimumAcrossThreadCounts) {
  for (unsigned seed : {3u, 17u, 99u}) {
    const Model m = knapsack_fixture(22, seed);
    MilpOptions seq;
    seq.num_threads = 1;
    const Solution s1 = solve_milp(m, seq);
    ASSERT_TRUE(s1.optimal()) << "seed " << seed;
    for (int threads : {2, 4}) {
      MilpOptions par;
      par.num_threads = threads;
      const Solution sp = solve_milp(m, par);
      ASSERT_TRUE(sp.optimal()) << "seed " << seed << " threads " << threads;
      EXPECT_NEAR(sp.objective, s1.objective, 1e-6)
          << "seed " << seed << " threads " << threads;
      EXPECT_TRUE(m.feasible(sp.x, 1e-5));
      EXPECT_EQ(sp.threads_used, threads);
      ASSERT_EQ(sp.nodes_per_worker.size(), static_cast<std::size_t>(threads));
      std::int64_t pool_nodes = 0;
      for (const std::int64_t n : sp.nodes_per_worker) pool_nodes += n;
      EXPECT_LE(pool_nodes, sp.nodes_explored);
    }
  }
}

TEST(ParallelBBTest, EpnSameOptimumAcrossThreadCounts) {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "60 s solve budget is calibrated for an uninstrumented "
                  "build; KnapsackSameOptimumAcrossThreadCounts covers the "
                  "determinism property under sanitizers";
#endif
  using namespace archex::domains::epn;
  EpnConfig cfg = small_config();
  cfg.loads_per_side = 2;
  cfg.critical_threshold = 1e-3;
  cfg.sheddable_threshold = 1e-2;

  double obj1 = 0.0;
  {
    auto p = make_problem(cfg);
    milp::MilpOptions o;
    o.num_threads = 1;
    o.time_limit_s = 60;
    const ExplorationResult r = p->solve(o);
    ASSERT_TRUE(r.solution.optimal());
    obj1 = r.solution.objective;
  }
  {
    auto p = make_problem(cfg);
    milp::MilpOptions o;
    o.num_threads = 4;
    o.time_limit_s = 60;
    const ExplorationResult r = p->solve(o);
    ASSERT_TRUE(r.solution.optimal());
    EXPECT_NEAR(r.solution.objective, obj1, 1e-6);
    EXPECT_EQ(r.solution.threads_used, 4);
  }
}

TEST(ParallelBBTest, SequentialPathReportsSingleWorkerStats) {
  const Model m = knapsack_fixture(16, 5);
  MilpOptions o;
  o.num_threads = 1;
  const Solution s = solve_milp(m, o);
  ASSERT_TRUE(s.optimal());
  EXPECT_EQ(s.threads_used, 1);
  EXPECT_EQ(s.steals, 0);
  ASSERT_EQ(s.nodes_per_worker.size(), 1u);
  EXPECT_EQ(s.nodes_per_worker[0], s.nodes_explored);
  EXPECT_NEAR(s.cpu_seconds, s.solve_seconds, 1e-9);
}

TEST(ParallelBBTest, PropertySweepMatchesSequential) {
  // Random small integer programs: the 4-thread pool must agree with the
  // sequential solver's optimum (which the seed suite cross-checks against
  // exhaustive enumeration).
  for (int seed = 0; seed < 12; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed) * 7919u + 13u);
    std::uniform_real_distribution<double> coef(-4.0, 4.0);
    std::uniform_real_distribution<double> rhs_d(-2.0, 10.0);
    Model m;
    std::vector<VarId> v;
    for (int j = 0; j < 5; ++j) v.push_back(m.add_integer(0, 2));
    for (int i = 0; i < 4; ++i) {
      LinExpr e;
      for (int j = 0; j < 5; ++j) e += std::round(coef(rng)) * v[static_cast<std::size_t>(j)];
      m.add_constraint(std::move(e), Sense::LE, std::round(rhs_d(rng)));
    }
    LinExpr obj;
    for (int j = 0; j < 5; ++j) obj += std::round(coef(rng)) * v[static_cast<std::size_t>(j)];
    m.set_objective(obj);

    MilpOptions seq;
    seq.num_threads = 1;
    MilpOptions par;
    par.num_threads = 4;
    const Solution s1 = solve_milp(m, seq);
    const Solution s4 = solve_milp(m, par);
    EXPECT_EQ(s1.status, s4.status) << "seed " << seed;
    if (s1.optimal() && s4.optimal()) {
      EXPECT_NEAR(s1.objective, s4.objective, 1e-6) << "seed " << seed;
      EXPECT_TRUE(m.feasible(s4.x, 1e-5)) << "seed " << seed;
    }
  }
}

/// Strongly correlated knapsack with fractional values: granularity pruning
/// never fires and the tree grows into the hundreds of thousands of nodes —
/// the workload that actually exercises steals and incumbent races.
Model hard_knapsack_fixture(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(10, 30);
  Model m;
  LinExpr tw, tv;
  double cap = 0.0;
  for (int j = 0; j < n; ++j) {
    VarId v = m.add_binary();
    const int wj = w(rng);
    tw += static_cast<double>(wj) * v;
    tv += (static_cast<double>(wj) + 5.0 + 0.1 * (j % 7)) * v;
    cap += wj;
  }
  m.add_constraint(tw <= LinExpr(0.5 * cap));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

TEST(ParallelBBTest, PoolStressHardKnapsack) {
  const Model m = hard_knapsack_fixture(50, 42);
  MilpOptions seq;
  seq.num_threads = 1;
  seq.time_limit_s = 300;
  const Solution s1 = solve_milp(m, seq);
  ASSERT_TRUE(s1.optimal());
  EXPECT_GT(s1.nodes_explored, 10000);  // genuinely large tree

  MilpOptions par;
  par.num_threads = 4;
  par.time_limit_s = 300;
  const Solution s4 = solve_milp(m, par);
  ASSERT_TRUE(s4.optimal());
  EXPECT_NEAR(s4.objective, s1.objective, 1e-6);
  EXPECT_TRUE(m.feasible(s4.x, 1e-5));
  EXPECT_GE(s4.steals, 1);  // the pool actually redistributed work
}

TEST(ParallelBBTest, NodeLimitIsHonored) {
  const Model m = knapsack_fixture(25, 11);
  MilpOptions o;
  o.num_threads = 4;
  o.max_nodes = 5;
  const Solution s = solve_milp(m, o);
  if (s.has_incumbent) {
    EXPECT_TRUE(m.feasible(s.x, 1e-5));
  }
  EXPECT_TRUE(s.status == SolveStatus::Optimal || s.status == SolveStatus::NodeLimit ||
              s.status == SolveStatus::Infeasible)
      << to_string(s.status);
  // The budget may be overshot only by the racing increment of each worker.
  EXPECT_LE(s.nodes_explored, o.max_nodes + 4);
}

}  // namespace
}  // namespace archex::milp
