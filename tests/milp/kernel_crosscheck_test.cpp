/// \file kernel_crosscheck_test.cpp
/// Dense-vs-sparse basis kernel cross-checks. The dense explicit inverse is
/// the oracle: both kernels must agree on status, optimal objective and the
/// independent certifier's verdict over randomized bounded-variable LPs
/// (including degenerate and near-singular bases), and the eta-replay basis
/// transplant must reproduce what a fresh refactorization computes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "check/certify.hpp"
#include "milp/pricing.hpp"
#include "milp/simplex.hpp"

namespace {

using namespace archex::milp;

/// Random bounded-variable LP with mixed senses, negative lower bounds,
/// fixed columns and one-sided (infinite-bound) columns. Every generated
/// instance is feasible at x = 0 for its LE/GE rows; EQ rows use rhs 0 so
/// the origin stays feasible and phase 1 is still exercised via GE rows.
Model random_bounded_lp(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coef(-2.0, 3.0);
  std::uniform_int_distribution<int> kind(0, 9);
  std::uniform_int_distribution<int> col(0, n - 1);
  Model m;
  std::vector<VarId> v;
  for (int j = 0; j < n; ++j) {
    switch (kind(rng)) {
      case 0: v.push_back(m.add_continuous(-5.0, 5.0)); break;
      case 1: v.push_back(m.add_continuous(2.0, 2.0)); break;  // fixed
      case 2: v.push_back(m.add_continuous(0.0, kInf)); break;
      default: v.push_back(m.add_continuous(0.0, 10.0)); break;
    }
  }
  for (int i = 0; i < n; ++i) {
    LinExpr e;
    for (int k = 0; k < 4; ++k) e += coef(rng) * v[static_cast<std::size_t>(col(rng))];
    switch (i % 3) {
      case 0: m.add_constraint(std::move(e), Sense::LE, 8.0 + i); break;
      case 1: m.add_constraint(std::move(e), Sense::GE, -12.0 - i); break;
      default: m.add_constraint(std::move(e), Sense::EQ, 0.0); break;
    }
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) {
    // Columns unbounded above get a positive cost so minimization stays
    // bounded; the rest mix signs freely.
    const bool one_sided = m.vars()[static_cast<std::size_t>(j)].ub >= kInf;
    obj += (one_sided ? std::abs(coef(rng)) + 0.1 : coef(rng)) * v[static_cast<std::size_t>(j)];
  }
  m.set_objective(obj);
  return m;
}

SimplexOptions kernel_opts(BasisKernel k) {
  SimplexOptions o;
  o.kernel = k;
  return o;
}

/// Solve with both kernels and require identical verdicts: same status, and
/// on Optimal the same objective plus matching certify_lp verdicts.
void expect_kernels_agree(const Model& m, const char* what) {
  SimplexSolver sparse(m, kernel_opts(BasisKernel::SparseLu));
  SimplexSolver dense(m, kernel_opts(BasisKernel::Dense));
  const SolveStatus st_sparse = sparse.solve_primal();
  const SolveStatus st_dense = dense.solve_primal();
  EXPECT_EQ(st_sparse, st_dense) << what;
  if (st_sparse != SolveStatus::Optimal || st_dense != SolveStatus::Optimal) return;

  const double rel = 1e-6 * (1.0 + std::abs(dense.objective_value()));
  EXPECT_NEAR(sparse.objective_value(), dense.objective_value(), rel) << what;

  const auto cert_sparse =
      archex::check::certify_lp(m, sparse.primal_solution(), sparse.objective_value(),
                                sparse.dual_values(), sparse.reduced_costs());
  const auto cert_dense =
      archex::check::certify_lp(m, dense.primal_solution(), dense.objective_value(),
                                dense.dual_values(), dense.reduced_costs());
  EXPECT_EQ(cert_sparse.ok(), cert_dense.ok()) << what << "\nsparse: "
      << cert_sparse.summary() << "\ndense: " << cert_dense.summary();
  EXPECT_TRUE(cert_sparse.ok()) << what << "\n" << cert_sparse.summary();
}

TEST(KernelCrossCheck, RandomBoundedLpsAgree) {
  for (unsigned seed = 0; seed < 20; ++seed) {
    expect_kernels_agree(random_bounded_lp(18, seed),
                         ("seed " + std::to_string(seed)).c_str());
  }
}

TEST(KernelCrossCheck, DegenerateBasesAgree) {
  // Duplicated rows and symmetric costs: massive dual degeneracy, the
  // pivot-tie regime where kernels are most likely to diverge numerically.
  for (unsigned seed = 100; seed < 110; ++seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> coef(0.5, 2.0);
    Model m;
    std::vector<VarId> v;
    for (int j = 0; j < 10; ++j) v.push_back(m.add_continuous(0.0, 1.0));
    for (int i = 0; i < 5; ++i) {
      LinExpr e;
      for (int j = 0; j < 10; ++j) e += coef(rng) * v[static_cast<std::size_t>(j)];
      const double rhs = 4.0;
      LinExpr e2 = e;
      m.add_constraint(std::move(e), Sense::LE, rhs);
      m.add_constraint(std::move(e2), Sense::LE, rhs);  // exact duplicate row
    }
    LinExpr obj;
    for (int j = 0; j < 10; ++j) obj += -1.0 * v[static_cast<std::size_t>(j)];
    m.set_objective(obj);
    expect_kernels_agree(m, ("degenerate seed " + std::to_string(seed)).c_str());
  }
}

TEST(KernelCrossCheck, NearSingularBasesAgree) {
  // Rows that are near scalar multiples of each other: the basis matrix can
  // come within an eyelash of singular, stressing threshold pivoting.
  for (unsigned seed = 200; seed < 208; ++seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> coef(0.5, 2.0);
    Model m;
    std::vector<VarId> v;
    for (int j = 0; j < 8; ++j) v.push_back(m.add_continuous(0.0, 10.0));
    for (int i = 0; i < 4; ++i) {
      LinExpr a, b;
      for (int j = 0; j < 8; ++j) {
        const double c = coef(rng);
        a += c * v[static_cast<std::size_t>(j)];
        b += c * (1.0 + 1e-9) * v[static_cast<std::size_t>(j)];
      }
      m.add_constraint(std::move(a), Sense::LE, 20.0);
      m.add_constraint(std::move(b), Sense::GE, 1.0);
    }
    LinExpr obj;
    for (int j = 0; j < 8; ++j) obj += (j % 2 == 0 ? 1.0 : -1.0) * v[static_cast<std::size_t>(j)];
    m.set_objective(obj);
    expect_kernels_agree(m, ("near-singular seed " + std::to_string(seed)).c_str());
  }
}

TEST(KernelCrossCheck, EtaReplayMatchesRefactorization) {
  const Model m = random_bounded_lp(16, 7);
  SimplexSolver donor(m, kernel_opts(BasisKernel::SparseLu));
  ASSERT_EQ(donor.solve_primal(), SolveStatus::Optimal);
  // Accumulate eta updates past the initial factorization before exporting.
  donor.set_bounds(0, 0.0, 4.0);
  ASSERT_EQ(donor.reoptimize_dual(), SolveStatus::Optimal);
  const SimplexSolver::Basis basis = donor.export_basis();
  ASSERT_NE(basis.factor, nullptr) << "sparse kernel must ship its factorization";

  // Transplant via eta replay: no refactorization may be charged.
  SimplexSolver replay(m, kernel_opts(BasisKernel::SparseLu));
  replay.set_bounds(0, 0.0, 4.0);
  ASSERT_TRUE(replay.load_basis(basis));
  EXPECT_EQ(replay.reopt_stats().transplants, 1);
  EXPECT_EQ(replay.reopt_stats().refactors, 0)
      << "transplant must cost an eta replay, not a refactorization";

  // Same basis through the fresh-refactorization path (snapshot stripped).
  SimplexSolver::Basis stripped = basis;
  stripped.factor = nullptr;
  SimplexSolver refact(m, kernel_opts(BasisKernel::SparseLu));
  refact.set_bounds(0, 0.0, 4.0);
  ASSERT_TRUE(refact.load_basis(stripped));
  EXPECT_EQ(refact.reopt_stats().transplants, 0);
  EXPECT_GE(refact.reopt_stats().refactors, 1);

  // Both must land on the donor's optimum after a bound tightening.
  donor.set_bounds(1, 0.0, 3.0);
  replay.set_bounds(1, 0.0, 3.0);
  refact.set_bounds(1, 0.0, 3.0);
  ASSERT_EQ(donor.reoptimize_dual(), SolveStatus::Optimal);
  ASSERT_EQ(replay.reoptimize_dual(), SolveStatus::Optimal);
  ASSERT_EQ(refact.reoptimize_dual(), SolveStatus::Optimal);
  // The replayed transplant continues the donor's exact arithmetic: same
  // factors, same etas, same nonbasic resting points.
  EXPECT_DOUBLE_EQ(replay.objective_value(), donor.objective_value());
  const double rel = 1e-8 * (1.0 + std::abs(donor.objective_value()));
  EXPECT_NEAR(refact.objective_value(), donor.objective_value(), rel);
}

TEST(KernelCrossCheck, SnapshotSurvivesDonorMutation) {
  // The snapshot must be immutable: the donor pivoting on (refactorizing,
  // updating its eta file) cannot corrupt an already-exported basis.
  const Model m = random_bounded_lp(16, 7);
  SimplexSolver donor(m, kernel_opts(BasisKernel::SparseLu));
  ASSERT_EQ(donor.solve_primal(), SolveStatus::Optimal);
  const SimplexSolver::Basis basis = donor.export_basis();
  const double exported_obj = donor.objective_value();

  // Mutate the donor's kernel state thoroughly after the export: pivot,
  // refactorize, accumulate and discard etas. The tightened rounds need not
  // stay feasible — any churn serves — but the original bounds are restored
  // before the final comparison.
  for (int round = 0; round < 4; ++round) {
    const double lb = m.vars()[static_cast<std::size_t>(round)].lb;
    const double ub = m.vars()[static_cast<std::size_t>(round)].ub;
    donor.set_bounds(round, lb, lb + 0.5 * std::min(1.0, ub - lb));
    (void)donor.reoptimize_dual();
    donor.set_bounds(round, lb, ub);
    (void)donor.reoptimize_dual();
  }

  SimplexSolver thief(m, kernel_opts(BasisKernel::SparseLu));
  ASSERT_TRUE(thief.load_basis(basis));
  ASSERT_EQ(thief.reoptimize_dual(), SolveStatus::Optimal);
  const double rel = 1e-8 * (1.0 + std::abs(exported_obj));
  EXPECT_NEAR(thief.objective_value(), exported_obj, rel);
}

TEST(KernelCrossCheck, DenseKernelShipsNoSnapshotAndStillLoads) {
  const Model m = random_bounded_lp(12, 3);
  SimplexSolver a(m, kernel_opts(BasisKernel::Dense));
  ASSERT_EQ(a.solve_primal(), SolveStatus::Optimal);
  const SimplexSolver::Basis basis = a.export_basis();
  EXPECT_EQ(basis.factor, nullptr);
  SimplexSolver b(m, kernel_opts(BasisKernel::Dense));
  ASSERT_TRUE(b.load_basis(basis));  // refactorization fallback
  EXPECT_EQ(b.reopt_stats().transplants, 0);
  ASSERT_EQ(b.reoptimize_dual(), SolveStatus::Optimal);
  const double rel = 1e-8 * (1.0 + std::abs(a.objective_value()));
  EXPECT_NEAR(b.objective_value(), a.objective_value(), rel);
}

TEST(PricingRegistry, BuiltinsRegisteredAndUnknownFallsBack) {
  const auto names = pricer_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "dantzig"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "devex"), names.end());
  EXPECT_EQ(make_pricer("no-such-rule"), nullptr);

  // An unknown name on the options must fall back to Dantzig, not crash.
  SimplexOptions opts;
  opts.pricing = "no-such-rule";
  const Model m = random_bounded_lp(10, 5);
  const Solution s = solve_lp_relaxation(m, opts);
  EXPECT_EQ(s.status, SolveStatus::Optimal);
}

TEST(PricingRegistry, DevexReachesTheSameOptimum) {
  for (unsigned seed = 0; seed < 10; ++seed) {
    const Model m = random_bounded_lp(15, seed);
    SimplexOptions dantzig;
    SimplexOptions devex;
    devex.pricing = "devex";
    const Solution a = solve_lp_relaxation(m, dantzig);
    const Solution b = solve_lp_relaxation(m, devex);
    ASSERT_EQ(a.status, b.status) << "seed " << seed;
    if (a.status != SolveStatus::Optimal) continue;
    const double rel = 1e-6 * (1.0 + std::abs(a.objective));
    EXPECT_NEAR(b.objective, a.objective, rel) << "seed " << seed;
  }
}

}  // namespace
