/// Tests for the deterministic fault injector (milp/fault.hpp) and the
/// numerical-recovery ladder it exercises: every injectable site must leave
/// the branch & bound with a *sound* answer — either the clean optimum (the
/// ladder recovered) or a degraded solve whose reported bound still brackets
/// the true optimum (the ladder abandoned a subtree but never pruned it).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <thread>

#include "milp/branch_bound.hpp"
#include "milp/fault.hpp"
#include "milp/simplex.hpp"

namespace archex::milp {
namespace {

/// Strongly correlated knapsack (same recipe as the parallel-BB stress
/// suite): granularity pruning never fires, so the tree is deep enough that
/// a mid-search injection genuinely lands mid-search. n = 20, seed = 7 runs
/// ~1e3 nodes in milliseconds.
Model hard_knapsack_fixture(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(10, 30);
  Model m;
  LinExpr tw, tv;
  double cap = 0.0;
  for (int j = 0; j < n; ++j) {
    VarId v = m.add_binary();
    const int wj = w(rng);
    tw += static_cast<double>(wj) * v;
    tv += (static_cast<double>(wj) + 5.0 + 0.1 * (j % 7)) * v;
    cap += wj;
  }
  m.add_constraint(tw <= LinExpr(0.5 * cap));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

double metric(const Solution& s, const std::string& name) {
  const auto it = s.metrics.find(name);
  return it == s.metrics.end() ? 0.0 : it->second;
}

/// Occurrence counts of `site` (a) over a clean full solve and (b) over the
/// root phase alone (max_nodes = 1 stops before the tree). Aiming between
/// the two puts the injection mid-tree; root-LP failures run the same
/// ladder rungs and are tested separately.
struct SiteProfile {
  std::int64_t total = 0;
  std::int64_t root = 0;
  double clean_objective = 0.0;
  [[nodiscard]] std::int64_t mid_tree() const { return root + (total - root) / 2; }
};

SiteProfile profile_site(const Model& m, FaultSite site, const MilpOptions& base) {
  SiteProfile p;
  FaultPlan full;
  MilpOptions o = base;
  o.fault = &full;
  const Solution s = solve_milp(m, o);
  EXPECT_EQ(s.status, SolveStatus::Optimal);
  p.total = full.occurrences(site);
  p.clean_objective = s.objective;

  FaultPlan root_only;
  MilpOptions r = base;
  r.fault = &root_only;
  r.max_nodes = 1;
  solve_milp(m, r);
  p.root = root_only.occurrences(site);
  return p;
}

// ---------------------------------------------------------------------------
// FaultPlan unit behaviour
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, FiresExactlyAtTheNthOccurrence) {
  FaultPlan p;
  p.arm(FaultSite::NanPivot, 3);
  EXPECT_FALSE(p.fire(FaultSite::NanPivot));  // occurrence 1
  EXPECT_FALSE(p.fire(FaultSite::NanPivot));  // occurrence 2
  EXPECT_TRUE(p.fire(FaultSite::NanPivot));   // occurrence 3: fires
  EXPECT_FALSE(p.fire(FaultSite::NanPivot));  // one-shot without seed/repeat
  EXPECT_EQ(p.occurrences(FaultSite::NanPivot), 4);
  EXPECT_EQ(p.fired(FaultSite::NanPivot), 1);
  EXPECT_TRUE(p.any_fired());
}

TEST(FaultPlanTest, RepeatWindowFiresContiguously) {
  FaultPlan p;
  p.arm(FaultSite::SingularFactor, 2, /*seed=*/0, /*repeat=*/3);
  int fired = 0;
  for (int k = 1; k <= 10; ++k) fired += p.fire(FaultSite::SingularFactor);
  EXPECT_EQ(fired, 3);  // occurrences 2, 3, 4
  EXPECT_EQ(p.fired(FaultSite::SingularFactor), 3);
}

TEST(FaultPlanTest, SeededTailIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    FaultPlan p;
    p.arm(FaultSite::Deadline, 5, seed);
    std::vector<bool> hits;
    hits.reserve(200);
    for (int k = 0; k < 200; ++k) hits.push_back(p.fire(FaultSite::Deadline));
    return hits;
  };
  const auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);       // same seed replays exactly
  EXPECT_NE(a, c);       // different seed, different tail
  int tail_hits = 0;
  for (bool h : a) tail_hits += h;
  EXPECT_GE(tail_hits, 2);  // the ~1/8 tail actually fires sometimes
}

TEST(FaultPlanTest, UnarmedPlanOnlyCounts) {
  FaultPlan p;
  for (int k = 0; k < 7; ++k) EXPECT_FALSE(p.fire(FaultSite::BadAlloc));
  EXPECT_EQ(p.occurrences(FaultSite::BadAlloc), 7);
  EXPECT_EQ(p.fired(FaultSite::BadAlloc), 0);
  EXPECT_FALSE(p.any_fired());
}

TEST(FaultPlanTest, ParsesCliSpecs) {
  FaultPlan p;
  EXPECT_TRUE(p.arm_from_spec("singular:3"));
  EXPECT_TRUE(p.arm_from_spec("nan-pivot:10:77"));
  EXPECT_TRUE(p.arm_from_spec("deadline:1"));
  EXPECT_TRUE(p.arm_from_spec("stall:2"));
  EXPECT_TRUE(p.arm_from_spec("bad-alloc:4"));
  EXPECT_FALSE(p.arm_from_spec(""));
  EXPECT_FALSE(p.arm_from_spec("singular"));        // missing :n
  EXPECT_FALSE(p.arm_from_spec("warp-core:1"));     // unknown site
  EXPECT_FALSE(p.arm_from_spec("singular:abc"));    // non-numeric n
  EXPECT_FALSE(p.arm_from_spec("singular:1:zz"));   // non-numeric seed
  EXPECT_FALSE(p.arm_from_spec("singular:0"));      // occurrences are 1-based
}

TEST(FaultPlanTest, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const auto parsed = parse_fault_site(to_string(site));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(parse_fault_site("nonsense").has_value());
}

// ---------------------------------------------------------------------------
// Recovery ladder: each injectable site, sequential search
// ---------------------------------------------------------------------------

TEST(RecoveryLadderTest, NanPivotMidSearchRecoversToCleanOptimum) {
  const Model m = hard_knapsack_fixture(20, 7);
  MilpOptions base;
  base.num_threads = 1;
  const SiteProfile prof = profile_site(m, FaultSite::NanPivot, base);
  ASSERT_GT(prof.total, prof.root + 8);  // the tree is where most pivots are

  // repeat = 2: a single poisoned pivot is absorbed by reoptimize_dual's own
  // cold fallback; the second consecutive firing defeats that too, so the
  // NumericalError reaches the branch & bound and the ladder must engage.
  FaultPlan plan;
  plan.arm(FaultSite::NanPivot, prof.mid_tree(), /*seed=*/0, /*repeat=*/2);
  MilpOptions opts = base;
  opts.fault = &plan;
  const Solution s = solve_milp(m, opts);
  EXPECT_TRUE(plan.any_fired());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(s.objective, prof.clean_objective);
  EXPECT_GE(metric(s, "milp.recover.tighten"), 1.0);
  EXPECT_EQ(metric(s, "check.certify.ok"), 1.0);
  EXPECT_FALSE(s.degraded);
}

TEST(RecoveryLadderTest, SingularRefactorizationRecovers) {
  const Model m = hard_knapsack_fixture(20, 7);
  // Refactorize every pivot so the singular site is reached at every node.
  MilpOptions base;
  base.num_threads = 1;
  base.lp.refactor_interval = 1;
  const SiteProfile prof = profile_site(m, FaultSite::SingularFactor, base);
  ASSERT_GT(prof.total, prof.root + 8);

  FaultPlan plan;
  plan.arm(FaultSite::SingularFactor, prof.mid_tree());
  MilpOptions opts = base;
  opts.fault = &plan;
  const Solution s = solve_milp(m, opts);
  EXPECT_TRUE(plan.any_fired());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(s.objective, prof.clean_objective);
  EXPECT_EQ(metric(s, "check.certify.ok"), 1.0);
}

TEST(RecoveryLadderTest, BadAllocDuringNodeSolveRecovers) {
  const Model m = hard_knapsack_fixture(20, 7);
  MilpOptions base;
  base.num_threads = 1;
  // The bad-alloc site only exists at tree nodes, so no root aiming needed.
  const SiteProfile prof = profile_site(m, FaultSite::BadAlloc, base);
  ASSERT_GT(prof.total, 2);
  ASSERT_EQ(prof.root, 0);

  FaultPlan plan;
  plan.arm(FaultSite::BadAlloc, prof.total / 2);
  MilpOptions opts = base;
  opts.fault = &plan;
  const Solution s = solve_milp(m, opts);
  EXPECT_TRUE(plan.any_fired());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(s.objective, prof.clean_objective);
  EXPECT_GE(metric(s, "milp.recover.tighten"), 1.0);
  EXPECT_EQ(metric(s, "check.certify.ok"), 1.0);
}

TEST(RecoveryLadderTest, InjectedDeadlineTerminatesWithTimeLimit) {
  const Model m = hard_knapsack_fixture(20, 7);
  MilpOptions base;
  base.num_threads = 1;
  const SiteProfile prof = profile_site(m, FaultSite::Deadline, base);
  ASSERT_GT(prof.total, 2);  // the poll site is actually reached repeatedly

  FaultPlan plan;
  plan.arm(FaultSite::Deadline, std::max<std::int64_t>(2, prof.mid_tree()));
  MilpOptions opts = base;
  opts.fault = &plan;
  const Solution s = solve_milp(m, opts);
  EXPECT_TRUE(plan.any_fired());
  EXPECT_EQ(s.status, SolveStatus::TimeLimit);
  EXPECT_EQ(s.term_reason, TermReason::TimeLimit);
  // An injected deadline is a limit, not a numerical failure: any incumbent
  // found before it must still be a feasible point with a sound bound.
  if (s.has_incumbent) {
    EXPECT_TRUE(m.feasible(s.x, 1e-5));
    EXPECT_GE(s.best_bound, s.objective - 1e-6);  // Maximize: bound >= incumbent
  }
}

TEST(RecoveryLadderTest, RootLpFailureRecoversOnceThenSurfaces) {
  // The initial root solve gets the same first two ladder rungs as every
  // node LP, so a transient failure recovers to the clean optimum.
  const Model m = hard_knapsack_fixture(20, 7);
  MilpOptions base;
  base.num_threads = 1;
  const Solution clean = solve_milp(m, base);
  ASSERT_EQ(clean.status, SolveStatus::Optimal);

  FaultPlan once;
  once.arm(FaultSite::NanPivot, 2);  // inside the root primal solve
  MilpOptions o1 = base;
  o1.fault = &once;
  const Solution s1 = solve_milp(m, o1);
  EXPECT_TRUE(once.any_fired());
  EXPECT_EQ(s1.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(s1.objective, clean.objective);

  // A persistent root failure defeats every rung; below the first tree node
  // there is no parent bound to inherit, so it must surface as
  // NumericalError — never a bogus Optimal/Infeasible claim.
  FaultPlan always;
  always.arm(FaultSite::NanPivot, 2, /*seed=*/0,
             /*repeat=*/std::numeric_limits<std::int64_t>::max() / 2);
  MilpOptions o2 = base;
  o2.fault = &always;
  const Solution s2 = solve_milp(m, o2);
  EXPECT_TRUE(always.any_fired());
  EXPECT_EQ(s2.status, SolveStatus::NumericalError);
  EXPECT_EQ(s2.term_reason, TermReason::Numerical);
  EXPECT_FALSE(s2.has_incumbent);
}

/// Minimize-cost exact cover with a coverage floor: the equality rows make
/// every cold (re)solve open phase 1 with live artificials, so an injection
/// sweep also lands failures in that state. 8 groups x 4 members runs a few
/// hundred nodes in milliseconds.
Model equality_cover_fixture(int n_groups, int per_group, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> jitter(0, 3);
  Model m;
  LinExpr total_w, obj;
  double wmax = 0.0;
  for (int g = 0; g < n_groups; ++g) {
    LinExpr pick;
    double gw = 0.0;
    for (int k = 0; k < per_group; ++k) {
      const VarId v = m.add_binary();
      const double w = 5.0 + 3.0 * k + jitter(rng);
      const double c = 4.0 + 3.0 * k + jitter(rng);
      pick += 1.0 * v;
      total_w += w * v;
      obj += c * v;
      gw = std::max(gw, w);
    }
    m.add_constraint(std::move(pick) == LinExpr(1.0));
    wmax += gw;
  }
  m.add_constraint(std::move(total_w) >= LinExpr(0.62 * wmax));
  m.set_objective(obj, ObjectiveSense::Minimize);
  return m;
}

TEST(RecoveryLadderTest, RecoveredSolvesNeverClaimFalseOptima) {
  // Regression: a node LP aborted mid-phase-1 (live zero-cost artificials)
  // used to be warm-reoptimized as-is by the recovery ladder; the
  // artificials then absorbed constraint violations for free and the node
  // returned "optimal" objectives far below the true bound — unsound prunes
  // and a wrong final optimum. Sweep each injectable numerical site across
  // the whole solve: wherever the failure lands, a non-degraded Optimal
  // must reproduce the clean optimum.
  const Model m = equality_cover_fixture(8, 4, 11);
  MilpOptions base;
  base.num_threads = 1;

  FaultPlan probe;  // unarmed: counts occurrences over the clean solve
  MilpOptions ob = base;
  ob.fault = &probe;
  const Solution clean = solve_milp(m, ob);
  ASSERT_EQ(clean.status, SolveStatus::Optimal);

  for (const FaultSite site : {FaultSite::SingularFactor, FaultSite::NanPivot}) {
    const std::int64_t total = probe.occurrences(site);
    ASSERT_GT(total, 0) << to_string(site);
    const std::int64_t step = std::max<std::int64_t>(1, total / 48);
    for (std::int64_t nth = 1; nth <= total; nth += step) {
      FaultPlan plan;
      plan.arm(site, nth);
      MilpOptions o = base;
      o.fault = &plan;
      const Solution s = solve_milp(m, o);
      if (s.status == SolveStatus::Optimal && !s.degraded) {
        EXPECT_NEAR(s.objective, clean.objective, 1e-6)
            << to_string(site) << " injected at occurrence " << nth;
      }
    }
  }
}

TEST(RecoveryLadderTest, ExhaustedLadderDegradesWithSoundBound) {
  const Model m = hard_knapsack_fixture(20, 7);
  MilpOptions base;
  base.num_threads = 1;
  const SiteProfile prof = profile_site(m, FaultSite::NanPivot, base);

  // Fire the NaN pivot at *every* occurrence past the root phase: every rung
  // of the ladder (tighten, cold, each retry) re-enters a pivot loop and is
  // poisoned again, so subtrees must be abandoned.
  FaultPlan plan;
  plan.arm(FaultSite::NanPivot, prof.root + 1, /*seed=*/0,
           /*repeat=*/std::numeric_limits<std::int64_t>::max() / 2);
  MilpOptions opts = base;
  opts.fault = &plan;
  opts.trace = true;
  const Solution s = solve_milp(m, opts);
  EXPECT_TRUE(plan.any_fired());
  EXPECT_TRUE(s.degraded);
  EXPECT_GT(s.degraded_nodes, 0);
  EXPECT_GE(metric(s, "milp.recover.abandoned"), 1.0);
  EXPECT_GE(metric(s, "milp.recover.requeue"), 1.0);
  EXPECT_GE(metric(s, "milp.degraded_nodes"), 1.0);
  // Soundness (Maximize sense): whatever incumbent survived cannot beat the
  // true optimum, and the reported bound must still dominate it — the
  // abandoned subtrees were folded into best_bound, not pruned.
  if (s.has_incumbent) {
    EXPECT_LE(s.objective, prof.clean_objective + 1e-6);
    EXPECT_GE(s.best_bound, prof.clean_objective - 1e-6);
    EXPECT_EQ(metric(s, "check.certify.ok"), 1.0);
  } else {
    // Never claim infeasibility out of a degraded, empty-handed search.
    EXPECT_NE(s.status, SolveStatus::Infeasible);
  }
  // The trace records the escalation.
  bool saw_abandon = false;
  for (const auto& e : s.trace.events) {
    if (e.type == obs::EventType::Recover &&
        static_cast<obs::RecoverRung>(e.detail) == obs::RecoverRung::Abandon) {
      saw_abandon = true;
    }
  }
  EXPECT_TRUE(saw_abandon);
}

// ---------------------------------------------------------------------------
// Recovery ladder: pool workers (requeue path) and stall injection
// ---------------------------------------------------------------------------

TEST(RecoveryLadderTest, ParallelNanPivotStillReachesOptimum) {
  const Model m = hard_knapsack_fixture(20, 7);
  MilpOptions base;
  base.num_threads = 1;
  const SiteProfile prof = profile_site(m, FaultSite::NanPivot, base);
  ASSERT_GT(prof.total, prof.root + 16);

  FaultPlan plan;
  plan.arm(FaultSite::NanPivot, prof.mid_tree(), /*seed=*/0, /*repeat=*/8);
  MilpOptions opts;
  opts.num_threads = 2;
  opts.fault = &plan;
  const Solution s = solve_milp(m, opts);
  EXPECT_TRUE(plan.any_fired());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, prof.clean_objective, 1e-6);
  EXPECT_EQ(metric(s, "check.certify.ok"), 1.0);
}

TEST(RecoveryLadderTest, WorkerStallInjectionDoesNotChangeTheOptimum) {
  const Model m = hard_knapsack_fixture(18, 11);
  MilpOptions clean;
  clean.num_threads = 1;
  const Solution ref = solve_milp(m, clean);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);

  FaultPlan plan;
  plan.arm(FaultSite::WorkerStall, 2, /*seed=*/0, /*repeat=*/2);
  MilpOptions opts;
  opts.num_threads = 2;
  opts.fault = &plan;
  const Solution s = solve_milp(m, opts);
  EXPECT_TRUE(plan.any_fired());
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, ref.objective, 1e-6);
}

// ---------------------------------------------------------------------------
// Deadline arming (the 1e9-seconds sentinel regression)
// ---------------------------------------------------------------------------

TEST(DeadlineArmingTest, NonPositiveTimeLimitsTimeOutImmediately) {
  // A negative limit clamps to "already expired" — the historical meaning —
  // so 0 and -1e-4 behave identically instead of oppositely (pre-fix, any
  // negative finite limit silently meant *unlimited*).
  const Model m = hard_knapsack_fixture(16, 3);
  for (double limit : {0.0, -1e-4, -1.0}) {
    MilpOptions opts;
    opts.num_threads = 1;
    opts.time_limit_s = limit;
    const Solution s = solve_milp(m, opts);
    EXPECT_EQ(s.status, SolveStatus::TimeLimit) << "time_limit_s=" << limit;
  }
}

TEST(DeadlineArmingTest, HugeFiniteTimeLimitsStillSolve) {
  // Pre-fix, any limit >= 1e9 s silently meant "no deadline", and naively
  // arming it overflowed steady_clock's integer range. Both huge-finite
  // cases must now solve to optimality.
  const Model m = hard_knapsack_fixture(16, 3);
  for (double limit : {1.5e9, 1e18}) {
    MilpOptions opts;
    opts.num_threads = 1;
    opts.time_limit_s = limit;
    const Solution s = solve_milp(m, opts);
    EXPECT_EQ(s.status, SolveStatus::Optimal) << "time_limit_s=" << limit;
  }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation (the serve drain/preemption token)
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, PreSetTokenStopsBeforeTheTree) {
  const Model m = hard_knapsack_fixture(20, 7);
  std::atomic<bool> cancel{true};
  MilpOptions opts;
  opts.num_threads = 1;
  opts.cancel = &cancel;
  const Solution s = solve_milp(m, opts);
  // Cancellation reads as an expired budget: TimeLimit, never a claim.
  EXPECT_EQ(s.status, SolveStatus::TimeLimit);
  EXPECT_FALSE(s.has_incumbent);
}

TEST(CancelTokenTest, MidSolveCancelKeepsSoundIncumbent) {
  // Cancel from a second thread while the search runs; whatever incumbent
  // was found so far must still be feasible with a bracketing bound.
  const Model m = hard_knapsack_fixture(52, 7);
  const Solution clean = solve_milp(m, {});
  ASSERT_EQ(clean.status, SolveStatus::Optimal);

  std::atomic<bool> cancel{false};
  MilpOptions opts;
  opts.num_threads = 1;
  opts.cancel = &cancel;
  std::thread killer([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    cancel.store(true, std::memory_order_relaxed);
  });
  const Solution s = solve_milp(m, opts);
  killer.join();
  EXPECT_EQ(s.status, SolveStatus::TimeLimit);
  if (s.has_incumbent) {
    EXPECT_TRUE(m.feasible(s.x, 1e-5));
    EXPECT_LE(s.objective, clean.objective + 1e-6);   // Maximize
    EXPECT_GE(s.best_bound, clean.objective - 1e-6);  // bound still brackets
  }
}

// ---------------------------------------------------------------------------
// Multi-threaded injection sweep (the serve isolation drill, solver level):
// every injectable numerical site, swept shallow to deep through a 4-worker
// pool solve, must end in a sound state — the clean optimum, a degraded
// incumbent whose bound still brackets it, or an explicit NumericalError.
// Never a crash, never a false optimum.
// ---------------------------------------------------------------------------

TEST(MtInjectionSweepTest, FourWorkerSweepStaysSoundAcrossAllSites) {
  const Model m = hard_knapsack_fixture(20, 7);
  MilpOptions seq;
  seq.num_threads = 1;

  for (const FaultSite site :
       {FaultSite::SingularFactor, FaultSite::NanPivot, FaultSite::BadAlloc}) {
    const SiteProfile prof = profile_site(m, site, seq);
    if (prof.total == 0) continue;  // site unreachable on this fixture
    const std::int64_t probes[] = {1, prof.mid_tree(),
                                   std::max<std::int64_t>(1, prof.total - 2)};
    for (const std::int64_t nth : probes) {
      FaultPlan plan;
      // Repeat window + seeded tail: under a 4-worker pool the occurrence
      // ordering is nondeterministic, so a burst plus a sparse tail makes
      // sure failures land *somewhere* mid-search on every run.
      plan.arm(site, nth, /*seed=*/static_cast<std::uint64_t>(nth) + 1,
               /*repeat=*/6);
      MilpOptions opts;
      opts.num_threads = 4;
      opts.fault = &plan;
      const Solution s = solve_milp(m, opts);
      const std::string where =
          std::string(to_string(site)) + " @ " + std::to_string(nth);

      if (s.status == SolveStatus::Optimal && !s.degraded) {
        EXPECT_NEAR(s.objective, prof.clean_objective, 1e-6) << where;
      } else if (s.has_incumbent) {
        // Degraded or limit-stopped: sound bracket, feasible point.
        EXPECT_TRUE(m.feasible(s.x, 1e-5)) << where;
        EXPECT_LE(s.objective, prof.clean_objective + 1e-6) << where;
        EXPECT_GE(s.best_bound, prof.clean_objective - 1e-6) << where;
      } else {
        // Empty-handed exits must be explicit, never "infeasible".
        EXPECT_NE(s.status, SolveStatus::Infeasible) << where;
      }
    }
  }
}

TEST(MtInjectionSweepTest, PersistentPoisonDegradesSoundlyUnderFourWorkers) {
  // Mirror of ExhaustedLadderDegradesWithSoundBound through the pool: every
  // post-root NaN pivot is poisoned, so workers abandon subtrees. The
  // incumbent/bound bracket must survive the concurrent bound folding.
  const Model m = hard_knapsack_fixture(20, 7);
  MilpOptions seq;
  seq.num_threads = 1;
  const SiteProfile prof = profile_site(m, FaultSite::NanPivot, seq);

  FaultPlan plan;
  plan.arm(FaultSite::NanPivot, prof.root + 1, /*seed=*/0,
           /*repeat=*/std::numeric_limits<std::int64_t>::max() / 2);
  MilpOptions opts;
  opts.num_threads = 4;
  opts.fault = &plan;
  const Solution s = solve_milp(m, opts);
  EXPECT_TRUE(plan.any_fired());
  if (s.has_incumbent) {
    EXPECT_LE(s.objective, prof.clean_objective + 1e-6);
    EXPECT_GE(s.best_bound, prof.clean_objective - 1e-6);
  } else {
    EXPECT_NE(s.status, SolveStatus::Infeasible);
  }
}

}  // namespace
}  // namespace archex::milp
