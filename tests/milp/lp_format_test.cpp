#include "milp/lp_format.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "milp/branch_bound.hpp"

namespace archex::milp {
namespace {

TEST(LpFormatTest, ParsesMinimalModel) {
  std::istringstream in(R"(Minimize
 obj: 2 x + 3 y
Subject To
 c1: x + y >= 4
Bounds
 0 <= x <= 10
 0 <= y <= 10
End
)");
  const Model m = parse_lp(in);
  EXPECT_EQ(m.num_vars(), 2u);
  EXPECT_EQ(m.num_constraints(), 1u);
  const Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 8.0, 1e-7);  // x = 4, y = 0
}

TEST(LpFormatTest, MaximizeAndIntegrality) {
  std::istringstream in(R"(Maximize
 obj: x + y
Subject To
 cap: 2 x + 2 y <= 7
Bounds
 0 <= x <= 10
 0 <= y <= 10
Generals
 x y
End
)");
  const Model m = parse_lp(in);
  const Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(LpFormatTest, BinariesSection) {
  std::istringstream in(R"(Maximize
 obj: 5 a + 4 b + 3 c
Subject To
 w: 2 a + 3 b + c <= 5
Binaries
 a b c
End
)");
  const Model m = parse_lp(in);
  EXPECT_EQ(m.stats().num_binary, 3u);
  const Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 9.0, 1e-7);
}

TEST(LpFormatTest, NegativeAndFreeBounds) {
  std::istringstream in(R"(Minimize
 obj: x + y
Subject To
 c: x - y = 1
Bounds
 -inf <= x <= +inf
 y free
End
)");
  const Model m = parse_lp(in);
  EXPECT_EQ(m.vars()[0].lb, -kInf);
  EXPECT_EQ(m.vars()[1].ub, kInf);
  const Solution s = solve_milp(m);
  EXPECT_EQ(s.status, SolveStatus::Unbounded);
}

TEST(LpFormatTest, ConstantsAndRhsVariables) {
  // "x + 1 <= y + 4" must normalize to x - y <= 3.
  std::istringstream in(R"(Minimize
 obj: x
Subject To
 c: x + 1 <= y + 4
Bounds
 0 <= x <= 10
 0 <= y <= 0
End
)");
  const Model m = parse_lp(in);
  ASSERT_EQ(m.num_constraints(), 1u);
  EXPECT_NEAR(m.constraint(0).rhs, 3.0, 1e-12);
}

TEST(LpFormatTest, MultiLineStatements) {
  std::istringstream in(R"(Minimize
 obj: x
    + 2 y
Subject To
 c1: x + y
     >= 3
End
)");
  const Model m = parse_lp(in);
  EXPECT_EQ(m.num_vars(), 2u);
  const Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(LpFormatTest, RejectsGarbage) {
  std::istringstream in("Minimize\n obj: x\nSubject To\n c1: x ? 3\nEnd\n");
  EXPECT_THROW((void)parse_lp(in), std::runtime_error);
}

// Round-trip property: write_lp -> parse_lp preserves the optimal value on
// random MILPs (names, bounds, integrality, senses all survive).
class LpRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LpRoundTrip, PreservesOptimum) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 2663u + 5u);
  std::uniform_real_distribution<double> coef(-4.0, 4.0);

  Model m;
  std::vector<VarId> v;
  for (int j = 0; j < 4; ++j) v.push_back(m.add_binary("b" + std::to_string(j)));
  v.push_back(m.add_continuous(-2, 5, "z"));
  for (int i = 0; i < 3; ++i) {
    LinExpr e;
    for (const VarId x : v) e += std::round(coef(rng)) * x;
    m.add_constraint(std::move(e), i % 2 ? Sense::GE : Sense::LE, std::round(coef(rng)));
  }
  LinExpr obj;
  for (const VarId x : v) obj += std::round(coef(rng)) * x;
  m.set_objective(obj, GetParam() % 2 ? ObjectiveSense::Maximize : ObjectiveSense::Minimize);

  std::ostringstream out;
  m.write_lp(out);
  std::istringstream in(out.str());
  const Model parsed = parse_lp(in);

  const Solution a = solve_milp(m);
  const Solution b = solve_milp(parsed);
  ASSERT_EQ(a.status, b.status) << out.str();
  if (a.optimal()) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << out.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRoundTrip, ::testing::Range(0, 25));

// Writer round-trip for the features the random sweep does not hit together:
// Maximize sense, a ranged row (GE/LE pair bracketing one expression), ranged
// variable bounds with a negative lower end, and general integers. The
// written text must parse back to a model with identical structure and the
// identical solve result.
TEST(LpFormatTest, RangedRowMaximizeIntegerRoundTrip) {
  Model m;
  VarId x = m.add_integer(-3, 7, "x");
  VarId y = m.add_integer(0, 9, "y");
  VarId z = m.add_continuous(-2, 4, "z");
  // Ranged row 2 <= x + y + z <= 11, written as the standard pair.
  LinExpr row = LinExpr(x) + LinExpr(y) + LinExpr(z);
  m.add_constraint(row, Sense::GE, 2.0, "rng_lo");
  m.add_constraint(std::move(row), Sense::LE, 11.0, "rng_hi");
  m.add_constraint(2.0 * x - 1.0 * y <= LinExpr(5.0), "cap");
  m.set_objective(3.0 * x + 2.0 * y + 1.0 * z, ObjectiveSense::Maximize);

  std::ostringstream out;
  m.write_lp(out);
  std::istringstream in(out.str());
  const Model parsed = parse_lp(in);

  ASSERT_EQ(parsed.num_vars(), m.num_vars()) << out.str();
  ASSERT_EQ(parsed.num_constraints(), m.num_constraints()) << out.str();

  const Solution a = solve_milp(m);
  const Solution b = solve_milp(parsed);
  ASSERT_EQ(a.status, b.status) << out.str();
  ASSERT_TRUE(a.optimal()) << out.str();
  EXPECT_NEAR(a.objective, b.objective, 1e-9) << out.str();
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t j = 0; j < a.x.size(); ++j) {
    EXPECT_NEAR(a.x[j], b.x[j], 1e-9) << "var " << j << "\n" << out.str();
  }
  // Integrality survived: both integer columns land on whole numbers.
  EXPECT_NEAR(b.x[0], std::round(b.x[0]), 1e-9);
  EXPECT_NEAR(b.x[1], std::round(b.x[1]), 1e-9);
}

/// write -> parse -> write must be the identity on the written text. This is
/// the strongest round-trip property the format supports and is exactly what
/// broke for the two cases below before the parser registered Bounds-section
/// variables in declaration order.
std::string second_write(const Model& m, std::string* first = nullptr) {
  std::ostringstream out1;
  m.write_lp(out1);
  std::istringstream in(out1.str());
  const Model parsed = parse_lp(in);
  std::ostringstream out2;
  parsed.write_lp(out2);
  if (first != nullptr) *first = out1.str();
  return out2.str();
}

TEST(LpFormatTest, UnusedVariableSurvivesRoundTripUnchanged) {
  // "spare" is declared (it gets a Bounds line) but appears in no row and
  // not in the objective. It must keep its column, name, type and bounds.
  Model m;
  VarId x = m.add_continuous(0.0, 10.0, "x");
  m.add_integer(-1.0, 6.0, "spare");
  VarId y = m.add_continuous(0.0, 4.0, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y) <= LinExpr(8.0), "cap");
  m.set_objective(1.0 * x + 2.0 * y);

  std::string first;
  const std::string second = second_write(m, &first);
  EXPECT_EQ(first, second);

  std::istringstream in(first);
  const Model parsed = parse_lp(in);
  ASSERT_EQ(parsed.num_vars(), 3u);
  EXPECT_EQ(parsed.vars()[1].name, "spare");
  EXPECT_EQ(parsed.vars()[1].type, VarType::Integer);
  EXPECT_EQ(parsed.vars()[1].lb, -1.0);
  EXPECT_EQ(parsed.vars()[1].ub, 6.0);
}

TEST(LpFormatTest, AllZeroCoefficientRowSurvivesRoundTrip) {
  // A row whose coefficients all cancelled writes as "name: 0 <= rhs"; it
  // must parse back as an (empty) row, not vanish or shift later rows.
  Model m;
  VarId x = m.add_continuous(0.0, 5.0, "x");
  m.add_constraint(2.0 * x - 2.0 * x, Sense::LE, 3.0, "ghost");
  m.add_constraint(LinExpr(x), Sense::GE, 1.0, "real");
  m.set_objective(1.0 * x);

  std::string first;
  const std::string second = second_write(m, &first);
  EXPECT_EQ(first, second);

  std::istringstream in(first);
  const Model parsed = parse_lp(in);
  ASSERT_EQ(parsed.num_constraints(), 2u);
  EXPECT_EQ(parsed.constraint(0).name, "ghost");
  EXPECT_TRUE(parsed.constraint(0).expr.terms().empty());
  EXPECT_EQ(parsed.constraint(0).rhs, 3.0);
  EXPECT_EQ(parsed.constraint(1).name, "real");
}

TEST(LpFormatTest, FixedAndFreeBoundsRoundTripUnchanged) {
  Model m;
  VarId x = m.add_continuous(2.5, 2.5, "pinned");
  VarId f = m.add_continuous(-kInf, kInf, "free_var");
  m.add_constraint(LinExpr(x) + LinExpr(f), Sense::LE, 9.0, "c");
  m.set_objective(1.0 * f);

  std::string first;
  const std::string second = second_write(m, &first);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace archex::milp
