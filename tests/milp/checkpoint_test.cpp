/// Tests for branch & bound checkpoint/resume (milp/checkpoint.hpp): model
/// fingerprinting, hexfloat round-tripping of the on-disk format, rejection
/// of corrupt or mismatched files, and end-to-end interrupt/resume runs that
/// must land on the uninterrupted optimum exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>

#include "milp/branch_bound.hpp"
#include "milp/checkpoint.hpp"

namespace archex::milp {
namespace {

Model knapsack_fixture(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(1, 9);
  Model m;
  std::vector<VarId> v;
  LinExpr tw, tv;
  for (int j = 0; j < n; ++j) {
    v.push_back(m.add_binary());
    tw += static_cast<double>(w(rng)) * v.back();
    tv += static_cast<double>(w(rng)) * v.back();
  }
  m.add_constraint(tw <= LinExpr(2.5 * n));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

double metric(const Solution& s, const std::string& name) {
  const auto it = s.metrics.find(name);
  return it == s.metrics.end() ? 0.0 : it->second;
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

TEST(CheckpointTest, FingerprintIsStableAndSensitive) {
  const Model a = knapsack_fixture(12, 5);
  const Model b = knapsack_fixture(12, 5);
  EXPECT_EQ(model_fingerprint(a), model_fingerprint(b));  // deterministic

  Model c = knapsack_fixture(12, 5);
  c.var(VarId{0}).ub = 2.0;  // one bound differs
  EXPECT_NE(model_fingerprint(a), model_fingerprint(c));

  const Model d = knapsack_fixture(12, 6);  // different coefficients
  EXPECT_NE(model_fingerprint(a), model_fingerprint(d));

  Model e = knapsack_fixture(12, 5);
  e.set_objective(e.objective(), ObjectiveSense::Minimize);  // sense flip
  EXPECT_NE(model_fingerprint(a), model_fingerprint(e));
}

// ---------------------------------------------------------------------------
// Save / load round trip
// ---------------------------------------------------------------------------

TEST(CheckpointTest, SaveLoadRoundTripsBitExactly) {
  CheckpointData d;
  d.fingerprint = 0xDEADBEEFCAFEF00DULL;
  d.nodes = 12345;
  d.root_bound = -1.0 / 3.0;  // not representable in decimal
  d.has_incumbent = true;
  d.incumbent_obj = 1e-17 + 1.0;
  d.incumbent_x = {0.0, 1.0, 1.0 / 3.0, 5e-324 /* min denormal */, -0.0};
  d.frontier.push_back({-7.25, 1, {{2, 0.0, 0.0}, {4, 1.0, 1.0}}});
  d.frontier.push_back({std::nextafter(-7.25, 0.0), 0, {}});

  const std::string path = temp_path("roundtrip.ck");
  ASSERT_TRUE(save_checkpoint(path, d));
  // The temp file was renamed away, not left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  CheckpointData r;
  ASSERT_TRUE(load_checkpoint(path, r));
  EXPECT_EQ(r.fingerprint, d.fingerprint);
  EXPECT_EQ(r.nodes, d.nodes);
  EXPECT_EQ(r.root_bound, d.root_bound);
  ASSERT_TRUE(r.has_incumbent);
  EXPECT_EQ(r.incumbent_obj, d.incumbent_obj);
  ASSERT_EQ(r.incumbent_x.size(), d.incumbent_x.size());
  for (std::size_t i = 0; i < d.incumbent_x.size(); ++i) {
    EXPECT_EQ(r.incumbent_x[i], d.incumbent_x[i]) << "x[" << i << "]";
  }
  EXPECT_TRUE(std::signbit(r.incumbent_x[4]));  // -0.0 survives hexfloat
  ASSERT_EQ(r.frontier.size(), 2u);
  EXPECT_EQ(r.frontier[0].bound, -7.25);
  EXPECT_EQ(r.frontier[0].retries, 1);
  ASSERT_EQ(r.frontier[0].path.size(), 2u);
  EXPECT_EQ(r.frontier[0].path[1].col, 4);
  EXPECT_EQ(r.frontier[0].path[1].ub, 1.0);
  EXPECT_EQ(r.frontier[1].bound, std::nextafter(-7.25, 0.0));  // bit-exact
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsMissingCorruptAndMismatchedVersions) {
  CheckpointData r;
  EXPECT_FALSE(load_checkpoint(temp_path("does-not-exist.ck"), r));

  const std::string garbage = temp_path("garbage.ck");
  {
    std::ofstream out(garbage);
    out << "not a checkpoint at all\n";
  }
  EXPECT_FALSE(load_checkpoint(garbage, r));
  std::remove(garbage.c_str());

  // A valid file with only the version bumped must be refused.
  CheckpointData d;
  d.fingerprint = 1;
  const std::string path = temp_path("version.ck");
  ASSERT_TRUE(save_checkpoint(path, d));
  std::string text;
  {
    std::ifstream in(path);
    std::getline(in, text);  // "archex-bb-checkpoint 1"
    std::string rest((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    text = "archex-bb-checkpoint 999\n" + rest;
  }
  {
    std::ofstream out(path);
    out << text;
  }
  EXPECT_FALSE(load_checkpoint(path, r));

  // Truncation (a torn copy, not a torn write — rename prevents those) is
  // also refused.
  {
    std::ofstream out(path);
    out << "archex-bb-checkpoint 1\nfingerprint 0000000000000001\n";
  }
  EXPECT_FALSE(load_checkpoint(path, r));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end interrupt / resume
// ---------------------------------------------------------------------------

TEST(CheckpointTest, InterruptedSolveResumesToTheUninterruptedOptimum) {
  const Model m = knapsack_fixture(26, 9);
  const std::string path = temp_path("resume.ck");
  std::remove(path.c_str());

  // Reference: the same checkpoint-routed (single-worker pool) search, run
  // to completion.
  MilpOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.checkpoint_file = temp_path("reference.ck");
  ref_opts.checkpoint_interval_s = 3600.0;  // effectively never mid-run
  const Solution ref = solve_milp(m, ref_opts);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);
  std::remove(ref_opts.checkpoint_file.c_str());

  // Interrupted run: a node budget plays the role of the kill signal. The
  // final checkpoint written on the way out must capture the live frontier.
  MilpOptions cut_opts;
  cut_opts.num_threads = 1;
  cut_opts.max_nodes = 60;
  cut_opts.checkpoint_file = path;
  cut_opts.checkpoint_interval_s = 0.0;  // checkpoint after every node
  const Solution cut = solve_milp(m, cut_opts);
  ASSERT_EQ(cut.status, SolveStatus::NodeLimit)
      << "fixture too easy for the interrupt test";
  ASSERT_TRUE(std::ifstream(path).good());

  // Resume and finish: the optimum must match the uninterrupted run exactly
  // (hexfloat serialization keeps every double bit-identical).
  MilpOptions res_opts;
  res_opts.num_threads = 1;
  res_opts.checkpoint_file = path;
  res_opts.resume = true;
  const Solution res = solve_milp(m, res_opts);
  EXPECT_EQ(metric(res, "milp.checkpoint.loaded"), 1.0);
  ASSERT_EQ(res.status, SolveStatus::Optimal);
  EXPECT_EQ(res.objective, ref.objective);
  EXPECT_EQ(metric(res, "check.certify.ok"), 1.0);

  // The search finished, so the final checkpoint has an empty frontier and
  // resuming *again* just returns the incumbent.
  MilpOptions again_opts = res_opts;
  const Solution again = solve_milp(m, again_opts);
  ASSERT_EQ(again.status, SolveStatus::Optimal);
  EXPECT_EQ(again.objective, ref.objective);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ResumeIntoADifferentModelIsRejected) {
  const Model a = knapsack_fixture(18, 9);
  const Model b = knapsack_fixture(18, 10);
  const std::string path = temp_path("mismatch.ck");
  std::remove(path.c_str());

  MilpOptions opts;
  opts.num_threads = 1;
  opts.checkpoint_file = path;
  opts.checkpoint_interval_s = 0.0;
  ASSERT_EQ(solve_milp(a, opts).status, SolveStatus::Optimal);
  ASSERT_TRUE(std::ifstream(path).good());

  // Same file, different model: the fingerprint check refuses the state and
  // the solve falls back to a clean full search of model b.
  MilpOptions res;
  res.num_threads = 1;
  res.checkpoint_file = path;
  res.resume = true;
  const Solution sb = solve_milp(b, res);
  EXPECT_EQ(metric(sb, "milp.checkpoint.rejected"), 1.0);
  EXPECT_EQ(metric(sb, "milp.checkpoint.loaded"), 0.0);
  ASSERT_EQ(sb.status, SolveStatus::Optimal);

  MilpOptions clean;
  clean.num_threads = 1;
  const Solution sb_clean = solve_milp(b, clean);
  EXPECT_EQ(sb.objective, sb_clean.objective);
  std::remove(path.c_str());
}

/// Strongly correlated knapsack (parallel-BB stress recipe): large tree, so
/// the tree phase actually runs and checkpoints get written.
Model hard_knapsack_fixture(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(10, 30);
  Model m;
  LinExpr tw, tv;
  double cap = 0.0;
  for (int j = 0; j < n; ++j) {
    VarId v = m.add_binary();
    const int wj = w(rng);
    tw += static_cast<double>(wj) * v;
    tv += (static_cast<double>(wj) + 5.0 + 0.1 * (j % 7)) * v;
    cap += wj;
  }
  m.add_constraint(tw <= LinExpr(0.5 * cap));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

TEST(CheckpointTest, ParallelSolveWithCheckpointingStaysCorrect) {
  const Model m = hard_knapsack_fixture(18, 13);
  MilpOptions clean;
  clean.num_threads = 1;
  const Solution ref = solve_milp(m, clean);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);

  const std::string path = temp_path("parallel.ck");
  MilpOptions opts;
  opts.num_threads = 2;
  opts.checkpoint_file = path;
  opts.checkpoint_interval_s = 0.0;  // maximal snapshot contention
  const Solution s = solve_milp(m, opts);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, ref.objective, 1e-6);
  EXPECT_GE(metric(s, "milp.checkpoint.writes"), 1.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace archex::milp
