/// Tests for branch & bound checkpoint/resume (milp/checkpoint.hpp): model
/// fingerprinting, hexfloat round-tripping of the on-disk format, rejection
/// of corrupt or mismatched files, and end-to-end interrupt/resume runs that
/// must land on the uninterrupted optimum exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <random>
#include <string>

#include "milp/branch_bound.hpp"
#include "milp/checkpoint.hpp"
#include "milp/fault.hpp"

namespace archex::milp {
namespace {

Model knapsack_fixture(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(1, 9);
  Model m;
  std::vector<VarId> v;
  LinExpr tw, tv;
  for (int j = 0; j < n; ++j) {
    v.push_back(m.add_binary());
    tw += static_cast<double>(w(rng)) * v.back();
    tv += static_cast<double>(w(rng)) * v.back();
  }
  m.add_constraint(tw <= LinExpr(2.5 * n));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

double metric(const Solution& s, const std::string& name) {
  const auto it = s.metrics.find(name);
  return it == s.metrics.end() ? 0.0 : it->second;
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

TEST(CheckpointTest, FingerprintIsStableAndSensitive) {
  const Model a = knapsack_fixture(12, 5);
  const Model b = knapsack_fixture(12, 5);
  EXPECT_EQ(model_fingerprint(a), model_fingerprint(b));  // deterministic

  Model c = knapsack_fixture(12, 5);
  c.var(VarId{0}).ub = 2.0;  // one bound differs
  EXPECT_NE(model_fingerprint(a), model_fingerprint(c));

  const Model d = knapsack_fixture(12, 6);  // different coefficients
  EXPECT_NE(model_fingerprint(a), model_fingerprint(d));

  Model e = knapsack_fixture(12, 5);
  e.set_objective(e.objective(), ObjectiveSense::Minimize);  // sense flip
  EXPECT_NE(model_fingerprint(a), model_fingerprint(e));
}

// ---------------------------------------------------------------------------
// Save / load round trip
// ---------------------------------------------------------------------------

TEST(CheckpointTest, SaveLoadRoundTripsBitExactly) {
  CheckpointData d;
  d.fingerprint = 0xDEADBEEFCAFEF00DULL;
  d.nodes = 12345;
  d.root_bound = -1.0 / 3.0;  // not representable in decimal
  d.degraded_nodes = 3;
  d.degraded_bound = -7.0 / 11.0;
  d.has_incumbent = true;
  d.incumbent_obj = 1e-17 + 1.0;
  d.incumbent_x = {0.0, 1.0, 1.0 / 3.0, 5e-324 /* min denormal */, -0.0};
  d.frontier.push_back({-7.25, 1, {{2, 0.0, 0.0}, {4, 1.0, 1.0}}});
  d.frontier.push_back({std::nextafter(-7.25, 0.0), 0, {}});

  const std::string path = temp_path("roundtrip.ck");
  ASSERT_TRUE(save_checkpoint(path, d));
  // The temp file was renamed away, not left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  CheckpointData r;
  ASSERT_TRUE(load_checkpoint(path, r));
  EXPECT_EQ(r.fingerprint, d.fingerprint);
  EXPECT_EQ(r.nodes, d.nodes);
  EXPECT_EQ(r.root_bound, d.root_bound);
  EXPECT_EQ(r.degraded_nodes, d.degraded_nodes);
  EXPECT_EQ(r.degraded_bound, d.degraded_bound);
  ASSERT_TRUE(r.has_incumbent);
  EXPECT_EQ(r.incumbent_obj, d.incumbent_obj);
  ASSERT_EQ(r.incumbent_x.size(), d.incumbent_x.size());
  for (std::size_t i = 0; i < d.incumbent_x.size(); ++i) {
    EXPECT_EQ(r.incumbent_x[i], d.incumbent_x[i]) << "x[" << i << "]";
  }
  EXPECT_TRUE(std::signbit(r.incumbent_x[4]));  // -0.0 survives hexfloat
  ASSERT_EQ(r.frontier.size(), 2u);
  EXPECT_EQ(r.frontier[0].bound, -7.25);
  EXPECT_EQ(r.frontier[0].retries, 1);
  ASSERT_EQ(r.frontier[0].path.size(), 2u);
  EXPECT_EQ(r.frontier[0].path[1].col, 4);
  EXPECT_EQ(r.frontier[0].path[1].ub, 1.0);
  EXPECT_EQ(r.frontier[1].bound, std::nextafter(-7.25, 0.0));  // bit-exact
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsMissingCorruptAndMismatchedVersions) {
  CheckpointData r;
  EXPECT_FALSE(load_checkpoint(temp_path("does-not-exist.ck"), r));

  const std::string garbage = temp_path("garbage.ck");
  {
    std::ofstream out(garbage);
    out << "not a checkpoint at all\n";
  }
  EXPECT_FALSE(load_checkpoint(garbage, r));
  std::remove(garbage.c_str());

  // A valid file with only the version bumped must be refused.
  CheckpointData d;
  d.fingerprint = 1;
  const std::string path = temp_path("version.ck");
  ASSERT_TRUE(save_checkpoint(path, d));
  std::string text;
  {
    std::ifstream in(path);
    std::getline(in, text);  // "archex-bb-checkpoint 2"
    std::string rest((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    text = "archex-bb-checkpoint 999\n" + rest;
  }
  {
    std::ofstream out(path);
    out << text;
  }
  EXPECT_FALSE(load_checkpoint(path, r));

  // Truncation (a torn copy, not a torn write — rename prevents those) is
  // also refused.
  {
    std::ofstream out(path);
    out << "archex-bb-checkpoint 2\nfingerprint 0000000000000001\n";
  }
  EXPECT_FALSE(load_checkpoint(path, r));

  // A version-1 file (no degradation record) is refused, not misparsed.
  {
    std::ofstream out(path);
    out << "archex-bb-checkpoint 1\nfingerprint 0000000000000001\n"
        << "nodes 0\nroot_bound 0x0p+0\nincumbent 0 0x0p+0\nx 0\n"
        << "frontier 0\nend\n";
  }
  EXPECT_FALSE(load_checkpoint(path, r));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// End-to-end interrupt / resume
// ---------------------------------------------------------------------------

TEST(CheckpointTest, InterruptedSolveResumesToTheUninterruptedOptimum) {
  const Model m = knapsack_fixture(26, 9);
  const std::string path = temp_path("resume.ck");
  std::remove(path.c_str());

  // Reference: the same checkpoint-routed (single-worker pool) search, run
  // to completion.
  MilpOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.checkpoint_file = temp_path("reference.ck");
  ref_opts.checkpoint_interval_s = 3600.0;  // effectively never mid-run
  const Solution ref = solve_milp(m, ref_opts);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);
  std::remove(ref_opts.checkpoint_file.c_str());

  // Interrupted run: a node budget plays the role of the kill signal. The
  // final checkpoint written on the way out must capture the live frontier.
  MilpOptions cut_opts;
  cut_opts.num_threads = 1;
  cut_opts.max_nodes = 60;
  cut_opts.checkpoint_file = path;
  cut_opts.checkpoint_interval_s = 0.0;  // checkpoint after every node
  const Solution cut = solve_milp(m, cut_opts);
  ASSERT_EQ(cut.status, SolveStatus::NodeLimit)
      << "fixture too easy for the interrupt test";
  ASSERT_TRUE(std::ifstream(path).good());

  // Resume and finish: the optimum must match the uninterrupted run exactly
  // (hexfloat serialization keeps every double bit-identical).
  MilpOptions res_opts;
  res_opts.num_threads = 1;
  res_opts.checkpoint_file = path;
  res_opts.resume = true;
  const Solution res = solve_milp(m, res_opts);
  EXPECT_EQ(metric(res, "milp.checkpoint.loaded"), 1.0);
  ASSERT_EQ(res.status, SolveStatus::Optimal);
  EXPECT_EQ(res.objective, ref.objective);
  EXPECT_EQ(metric(res, "check.certify.ok"), 1.0);

  // The search finished, so the final checkpoint has an empty frontier and
  // resuming *again* just returns the incumbent.
  MilpOptions again_opts = res_opts;
  const Solution again = solve_milp(m, again_opts);
  ASSERT_EQ(again.status, SolveStatus::Optimal);
  EXPECT_EQ(again.objective, ref.objective);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ResumeIntoADifferentModelIsRejected) {
  const Model a = knapsack_fixture(18, 9);
  const Model b = knapsack_fixture(18, 10);
  const std::string path = temp_path("mismatch.ck");
  std::remove(path.c_str());

  MilpOptions opts;
  opts.num_threads = 1;
  opts.checkpoint_file = path;
  opts.checkpoint_interval_s = 0.0;
  ASSERT_EQ(solve_milp(a, opts).status, SolveStatus::Optimal);
  ASSERT_TRUE(std::ifstream(path).good());

  // Same file, different model: the fingerprint check refuses the state and
  // the solve falls back to a clean full search of model b.
  MilpOptions res;
  res.num_threads = 1;
  res.checkpoint_file = path;
  res.resume = true;
  const Solution sb = solve_milp(b, res);
  EXPECT_EQ(metric(sb, "milp.checkpoint.rejected"), 1.0);
  EXPECT_EQ(metric(sb, "milp.checkpoint.loaded"), 0.0);
  ASSERT_EQ(sb.status, SolveStatus::Optimal);

  MilpOptions clean;
  clean.num_threads = 1;
  const Solution sb_clean = solve_milp(b, clean);
  EXPECT_EQ(sb.objective, sb_clean.objective);
  std::remove(path.c_str());
}

/// Strongly correlated knapsack (parallel-BB stress recipe): large tree, so
/// the tree phase actually runs and checkpoints get written.
Model hard_knapsack_fixture(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(10, 30);
  Model m;
  LinExpr tw, tv;
  double cap = 0.0;
  for (int j = 0; j < n; ++j) {
    VarId v = m.add_binary();
    const int wj = w(rng);
    tw += static_cast<double>(wj) * v;
    tv += (static_cast<double>(wj) + 5.0 + 0.1 * (j % 7)) * v;
    cap += wj;
  }
  m.add_constraint(tw <= LinExpr(0.5 * cap));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

TEST(CheckpointTest, LpTimeLimitKeepsInFlightNodeInCheckpoint) {
  const Model m = hard_knapsack_fixture(18, 13);
  const std::string ref_path = temp_path("lp_limit_ref.ck");
  const std::string path = temp_path("lp_limit.ck");
  std::remove(ref_path.c_str());
  std::remove(path.c_str());

  // Reference run doubling as a census of the deadline-poll site over the
  // exact checkpoint-routed search the cut runs below repeat.
  FaultPlan census;
  MilpOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.checkpoint_file = ref_path;
  ref_opts.checkpoint_interval_s = 3600.0;
  ref_opts.fault = &census;
  const Solution ref = solve_milp(m, ref_opts);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);
  const std::int64_t polls = census.occurrences(FaultSite::Deadline);
  ASSERT_GT(polls, 4) << "fixture too small to aim a mid-search deadline";
  std::remove(ref_path.c_str());

  // Sweep *every* poll occurrence: wherever the injected deadline lands
  // inside a node LP, TimeLimit surfaces from the simplex itself (st !=
  // Optimal after the solve) — the path where the interrupted node used to
  // be dropped from the final checkpoint. A fault-free resume must always
  // land exactly on the uninterrupted optimum; with the in-flight subtree
  // dropped, the resumed search can terminate "Optimal" below it.
  int interrupted = 0;
  for (std::int64_t n = 1; n <= polls; ++n) {
    std::remove(path.c_str());
    FaultPlan plan;
    plan.arm(FaultSite::Deadline, n);
    MilpOptions cut_opts;
    cut_opts.num_threads = 1;
    cut_opts.checkpoint_file = path;
    cut_opts.checkpoint_interval_s = 3600.0;  // only the final checkpoint
    cut_opts.fault = &plan;
    const Solution cut = solve_milp(m, cut_opts);
    EXPECT_TRUE(plan.any_fired());
    if (cut.status != SolveStatus::TimeLimit) continue;  // fired at root
    // No checkpoint at all means the firing predated the pool phase (the
    // resume below would just start fresh) — not the surface under test. An
    // *empty* frontier after a mid-pool TimeLimit, however, is exactly the
    // dropped-in-flight-node bug, so it must flow into the comparison.
    CheckpointData d;
    if (!load_checkpoint(path, d)) continue;
    ++interrupted;

    MilpOptions res_opts;
    res_opts.num_threads = 1;
    res_opts.checkpoint_file = path;
    res_opts.resume = true;
    const Solution res = solve_milp(m, res_opts);
    EXPECT_EQ(metric(res, "milp.checkpoint.loaded"), 1.0) << "poll " << n;
    ASSERT_EQ(res.status, SolveStatus::Optimal) << "poll " << n;
    EXPECT_EQ(res.objective, ref.objective) << "poll " << n;
  }
  // The sweep must have exercised genuine mid-search interrupts (checkpoints
  // with a live frontier), or the assertions above were vacuous.
  EXPECT_GT(interrupted, 2);
  std::remove(path.c_str());
}

TEST(CheckpointTest, DegradationRecordSurvivesResume) {
  const Model m = hard_knapsack_fixture(18, 13);
  const std::string path = temp_path("degraded.ck");
  std::remove(path.c_str());

  // Clean optimum + NaN-pivot occurrence census for mid-tree aiming.
  FaultPlan census;
  MilpOptions base;
  base.num_threads = 1;
  base.fault = &census;
  const Solution ref = solve_milp(m, base);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);
  const std::int64_t total = census.occurrences(FaultSite::NanPivot);
  FaultPlan root_census;
  MilpOptions root_opts = base;
  root_opts.fault = &root_census;
  root_opts.max_nodes = 1;
  solve_milp(m, root_opts);
  const std::int64_t root = root_census.occurrences(FaultSite::NanPivot);
  ASSERT_GT(total, root + 8);

  // Degraded checkpointed run: every pivot past mid-tree is poisoned, so the
  // ladder exhausts and abandons the remaining subtrees.
  FaultPlan plan;
  plan.arm(FaultSite::NanPivot, root + (total - root) / 2, /*seed=*/0,
           /*repeat=*/std::numeric_limits<std::int64_t>::max() / 2);
  MilpOptions cut_opts;
  cut_opts.num_threads = 1;
  cut_opts.checkpoint_file = path;
  cut_opts.checkpoint_interval_s = 0.0;
  cut_opts.fault = &plan;
  const Solution cut = solve_milp(m, cut_opts);
  EXPECT_TRUE(plan.any_fired());
  ASSERT_TRUE(cut.degraded);
  ASSERT_GT(cut.degraded_nodes, 0);

  // A fault-free resume must keep reporting the abandonment: before the
  // degradation record was checkpointed, this came back as a clean
  // (non-degraded) solve with best_bound == incumbent.
  MilpOptions res_opts;
  res_opts.num_threads = 1;
  res_opts.checkpoint_file = path;
  res_opts.resume = true;
  const Solution res = solve_milp(m, res_opts);
  EXPECT_EQ(metric(res, "milp.checkpoint.loaded"), 1.0);
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.degraded_nodes, cut.degraded_nodes);
  // Soundness (Maximize): the abandoned subtrees stay folded into the bound,
  // which therefore still brackets the true optimum.
  if (res.has_incumbent) {
    EXPECT_LE(res.objective, ref.objective + 1e-6);
    EXPECT_GE(res.best_bound, ref.objective - 1e-6);
  } else {
    EXPECT_NE(res.status, SolveStatus::Infeasible);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, NodeBudgetContinuesAcrossResume) {
  const Model m = knapsack_fixture(26, 9);
  const std::string path = temp_path("budget.ck");
  std::remove(path.c_str());

  MilpOptions cut_opts;
  cut_opts.num_threads = 1;
  cut_opts.max_nodes = 60;
  cut_opts.checkpoint_file = path;
  cut_opts.checkpoint_interval_s = 0.0;
  const Solution cut = solve_milp(m, cut_opts);
  ASSERT_EQ(cut.status, SolveStatus::NodeLimit);

  // Resuming with the same max_nodes continues the budget — the checkpointed
  // run already spent it, so the resumed run stops (almost) immediately
  // instead of exploring up to max_nodes *additional* nodes.
  MilpOptions res_opts = cut_opts;
  res_opts.resume = true;
  const Solution res = solve_milp(m, res_opts);
  EXPECT_EQ(metric(res, "milp.checkpoint.loaded"), 1.0);
  EXPECT_EQ(res.status, SolveStatus::NodeLimit);
  // Root-phase re-entry plus one budget-counter overshoot per worker is the
  // only tolerated slack.
  EXPECT_LE(res.nodes_explored, cut_opts.max_nodes + 5);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ParallelSolveWithCheckpointingStaysCorrect) {
  const Model m = hard_knapsack_fixture(18, 13);
  MilpOptions clean;
  clean.num_threads = 1;
  const Solution ref = solve_milp(m, clean);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);

  const std::string path = temp_path("parallel.ck");
  MilpOptions opts;
  opts.num_threads = 2;
  opts.checkpoint_file = path;
  opts.checkpoint_interval_s = 0.0;  // maximal snapshot contention
  const Solution s = solve_milp(m, opts);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, ref.objective, 1e-6);
  EXPECT_GE(metric(s, "milp.checkpoint.writes"), 1.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace archex::milp
