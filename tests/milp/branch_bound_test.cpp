#include "milp/branch_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace archex::milp {
namespace {

TEST(BranchBoundTest, PureLpPassThrough) {
  Model m;
  VarId x = m.add_continuous(0, 4);
  m.add_constraint(LinExpr(x) <= LinExpr(2.5));
  m.set_objective(-1.0 * x);
  Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, -2.5, 1e-7);
}

TEST(BranchBoundTest, SimpleKnapsack) {
  // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binaries.
  // Best: a=1, c=1 (w=3) obj 8; a=1,b=1 (w=5) obj 9. Optimum 9... check
  // a+b: 2+3=5 <= 5 obj 9; a+b+c: w=6 infeasible. So 9.
  Model m;
  VarId a = m.add_binary("a");
  VarId b = m.add_binary("b");
  VarId c = m.add_binary("c");
  m.add_constraint(2.0 * a + 3.0 * b + 1.0 * c <= LinExpr(5.0));
  m.set_objective(5.0 * a + 4.0 * b + 3.0 * c, ObjectiveSense::Maximize);
  Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 9.0, 1e-7);
  EXPECT_NEAR(s.value(a), 1.0, 1e-6);
}

TEST(BranchBoundTest, IntegerRoundingMatters) {
  // max x + y s.t. 2x + 2y <= 7 integers: LP gives 3.5, IP gives 3.
  Model m;
  VarId x = m.add_integer(0, 10);
  VarId y = m.add_integer(0, 10);
  m.add_constraint(2.0 * x + 2.0 * y <= LinExpr(7.0));
  m.set_objective(LinExpr(x) + LinExpr(y), ObjectiveSense::Maximize);
  Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(BranchBoundTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model m;
  VarId x = m.add_integer(0, 1);
  m.add_constraint(LinExpr(x) >= LinExpr(0.4));
  m.add_constraint(LinExpr(x) <= LinExpr(0.6));
  m.set_objective(LinExpr(x));
  Solution s = solve_milp(m);
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(BranchBoundTest, MixedIntegerWithContinuousPart) {
  // min 10*y + z s.t. z >= 3 - 2y, z >= 0, y binary.
  // y=0: z=3 obj 3. y=1: z=1 obj 11. Optimum 3.
  Model m;
  VarId y = m.add_binary("y");
  VarId z = m.add_continuous(0, kInf, "z");
  m.add_constraint(LinExpr(z) + 2.0 * y >= LinExpr(3.0));
  m.set_objective(10.0 * y + 1.0 * z);
  Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
  EXPECT_NEAR(s.value(y), 0.0, 1e-6);
  EXPECT_NEAR(s.value(z), 3.0, 1e-6);
}

TEST(BranchBoundTest, EqualityWithBinaries) {
  // a + b + c == 2, minimize 3a + 2b + c -> b=c=1, obj=3.
  Model m;
  VarId a = m.add_binary();
  VarId b = m.add_binary();
  VarId c = m.add_binary();
  m.add_constraint(LinExpr(a) + LinExpr(b) + LinExpr(c) == LinExpr(2.0));
  m.set_objective(3.0 * a + 2.0 * b + 1.0 * c);
  Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
}

TEST(BranchBoundTest, WarmStartAndColdStartAgree) {
  Model m;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> wd(1, 9);
  std::vector<VarId> xs;
  LinExpr tw, tv;
  for (int i = 0; i < 12; ++i) {
    VarId v = m.add_binary();
    xs.push_back(v);
    tw += static_cast<double>(wd(rng)) * v;
    tv += static_cast<double>(wd(rng)) * v;
  }
  m.add_constraint(tw <= LinExpr(25.0));
  m.set_objective(tv, ObjectiveSense::Maximize);
  Solution warm = solve_milp(m, {.warm_start = true});
  Solution cold = solve_milp(m, {.warm_start = false});
  ASSERT_TRUE(warm.optimal());
  ASSERT_TRUE(cold.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
}

TEST(BranchBoundTest, NodeLimitReportsIncumbent) {
  Model m;
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> wd(3, 19);
  LinExpr tw, tv;
  for (int i = 0; i < 25; ++i) {
    VarId v = m.add_binary();
    tw += static_cast<double>(wd(rng)) * v;
    tv += static_cast<double>(wd(rng)) * v;
  }
  m.add_constraint(tw <= LinExpr(60.0));
  m.set_objective(tv, ObjectiveSense::Maximize);
  MilpOptions o;
  o.max_nodes = 3;
  o.rounding_heuristic = true;
  Solution s = solve_milp(m, o);
  // With a tiny node budget we may or may not finish, but the status must be
  // truthful and any reported incumbent must be feasible.
  if (s.has_incumbent) {
    EXPECT_TRUE(m.feasible(s.x, 1e-5));
  }
  EXPECT_TRUE(s.status == SolveStatus::Optimal || s.status == SolveStatus::NodeLimit ||
              s.status == SolveStatus::Infeasible);
}

TEST(BranchBoundTest, MaximizeSenseRoundTrip) {
  Model m;
  VarId x = m.add_integer(0, 100);
  m.add_constraint(3.0 * x <= LinExpr(17.0));  // x <= 5.67 -> 5
  m.set_objective(LinExpr(x) + LinExpr(1.0), ObjectiveSense::Maximize);
  Solution s = solve_milp(m);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 6.0, 1e-7);  // x=5 plus constant 1
}

// ---------------------------------------------------------------------------
// Property suite: random small MILPs cross-checked against exhaustive
// enumeration of the integer grid (continuous part absent by construction).
// ---------------------------------------------------------------------------

class RandomMilpProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomMilpProperty, MatchesExhaustiveEnumeration) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919u + 13u);
  std::uniform_real_distribution<double> coef(-4.0, 4.0);
  std::uniform_real_distribution<double> rhs_d(-2.0, 10.0);
  std::uniform_int_distribution<int> rows_d(2, 5);

  const int n = 5;  // 5 integer vars in {0,1,2}
  Model m;
  std::vector<VarId> v;
  for (int j = 0; j < n; ++j) v.push_back(m.add_integer(0, 2));
  const int rows = rows_d(rng);
  std::vector<std::vector<double>> A(static_cast<std::size_t>(rows), std::vector<double>(n));
  std::vector<double> b(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    for (int j = 0; j < n; ++j) {
      A[i][j] = std::round(coef(rng));
      e += A[i][j] * v[j];
    }
    b[i] = std::round(rhs_d(rng));
    m.add_constraint(std::move(e), Sense::LE, b[i]);
  }
  std::vector<double> c(n);
  LinExpr obj;
  for (int j = 0; j < n; ++j) {
    c[j] = std::round(coef(rng));
    obj += c[j] * v[j];
  }
  m.set_objective(obj);

  // Exhaustive enumeration over 3^5 = 243 points.
  double best = kInf;
  std::vector<double> x(n);
  for (int code = 0; code < 243; ++code) {
    int t = code;
    for (int j = 0; j < n; ++j) {
      x[j] = t % 3;
      t /= 3;
    }
    bool ok = true;
    for (int i = 0; i < rows && ok; ++i) {
      double act = 0;
      for (int j = 0; j < n; ++j) act += A[i][j] * x[j];
      ok = act <= b[i] + 1e-9;
    }
    if (!ok) continue;
    double val = 0;
    for (int j = 0; j < n; ++j) val += c[j] * x[j];
    best = std::min(best, val);
  }

  Solution s = solve_milp(m);
  if (best == kInf) {
    EXPECT_EQ(s.status, SolveStatus::Infeasible) << "seed " << GetParam();
  } else {
    ASSERT_TRUE(s.optimal()) << "seed " << GetParam() << " status " << to_string(s.status);
    EXPECT_NEAR(s.objective, best, 1e-6) << "seed " << GetParam();
    EXPECT_TRUE(m.feasible(s.x, 1e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMilpProperty, ::testing::Range(0, 60));

}  // namespace
}  // namespace archex::milp
