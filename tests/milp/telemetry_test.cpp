/// Tests for the solver telemetry added around the branch & bound: termination
/// reasons, the time-stamped incumbent trajectory, the structured event trace
/// (sequential node accounting, parallel steal events), phase timings, the
/// metrics snapshot and the live node log — plus the invariant that tracing
/// never perturbs the search itself.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "milp/branch_bound.hpp"
#include "milp/simplex.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace archex::milp {
namespace {

/// Deterministic binary knapsack (same family the parallel suite uses).
Model knapsack_fixture(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(1, 9);
  Model m;
  LinExpr tw, tv;
  for (int j = 0; j < n; ++j) {
    VarId v = m.add_binary();
    tw += static_cast<double>(w(rng)) * v;
    tv += static_cast<double>(w(rng)) * v;
  }
  m.add_constraint(tw <= LinExpr(2.5 * n));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

/// Strongly correlated knapsack: a large tree that keeps every worker busy.
Model hard_knapsack_fixture(int n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(10, 30);
  Model m;
  LinExpr tw, tv;
  double cap = 0.0;
  for (int j = 0; j < n; ++j) {
    VarId v = m.add_binary();
    const int wj = w(rng);
    tw += static_cast<double>(wj) * v;
    tv += (static_cast<double>(wj) + 5.0 + 0.1 * (j % 7)) * v;
    cap += wj;
  }
  m.add_constraint(tw <= LinExpr(0.5 * cap));
  m.set_objective(tv, ObjectiveSense::Maximize);
  return m;
}

// ---------------------------------------------------------------------------
// Termination reasons (satellite: Solution reports *why* it stopped)
// ---------------------------------------------------------------------------

TEST(TermReasonTest, OptimalSolve) {
  const Solution s = solve_milp(knapsack_fixture(12, 1));
  ASSERT_TRUE(s.optimal());
  EXPECT_EQ(s.term_reason, TermReason::Optimal);
  EXPECT_STREQ(to_string(TermReason::Optimal), "optimal");
}

TEST(TermReasonTest, InfeasibleModel) {
  Model m;
  VarId x = m.add_binary();
  m.add_constraint(LinExpr(x) >= LinExpr(2.0));
  m.set_objective(LinExpr(x));
  const Solution s = solve_milp(m);
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
  EXPECT_EQ(s.term_reason, TermReason::Infeasible);
  EXPECT_STREQ(to_string(s.term_reason), "infeasible");
}

TEST(TermReasonTest, UnboundedModel) {
  Model m;
  VarId x = m.add_integer(0, kInf);
  m.set_objective(-1.0 * x);  // min -x, x unbounded above
  const Solution s = solve_milp(m);
  EXPECT_EQ(s.status, SolveStatus::Unbounded);
  EXPECT_EQ(s.term_reason, TermReason::Unbounded);
}

TEST(TermReasonTest, NodeLimit) {
  MilpOptions o;
  o.num_threads = 1;
  o.max_nodes = 1;  // the fractional root alone exhausts the budget
  const Solution s = solve_milp(knapsack_fixture(22, 3), o);
  EXPECT_EQ(s.status, SolveStatus::NodeLimit);
  EXPECT_EQ(s.term_reason, TermReason::NodeLimit);
  EXPECT_STREQ(to_string(s.term_reason), "node-limit");
}

TEST(TermReasonTest, TimeLimit) {
  MilpOptions o;
  o.num_threads = 1;
  o.time_limit_s = 0.05;  // far below what the hard tree needs
  const Solution s = solve_milp(hard_knapsack_fixture(45, 7), o);
  EXPECT_EQ(s.status, SolveStatus::TimeLimit);
  EXPECT_EQ(s.term_reason, TermReason::TimeLimit);
  EXPECT_STREQ(to_string(s.term_reason), "time-limit");
}

TEST(TermReasonTest, MatchesStatusMapping) {
  EXPECT_EQ(term_reason_from(SolveStatus::Optimal), TermReason::Optimal);
  EXPECT_EQ(term_reason_from(SolveStatus::Infeasible), TermReason::Infeasible);
  EXPECT_EQ(term_reason_from(SolveStatus::Unbounded), TermReason::Unbounded);
  EXPECT_EQ(term_reason_from(SolveStatus::NodeLimit), TermReason::NodeLimit);
  EXPECT_EQ(term_reason_from(SolveStatus::TimeLimit), TermReason::TimeLimit);
  EXPECT_EQ(term_reason_from(SolveStatus::IterationLimit), TermReason::IterationLimit);
  EXPECT_EQ(term_reason_from(SolveStatus::NumericalError), TermReason::Numerical);
}

TEST(TermReasonTest, LpRelaxationReportsReason) {
  const Solution s = solve_lp_relaxation(knapsack_fixture(12, 1));
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_EQ(s.term_reason, TermReason::Optimal);
}

// ---------------------------------------------------------------------------
// Incumbent trajectory (satellite: time-stamped improvements, model sense)
// ---------------------------------------------------------------------------

TEST(TelemetryTest, IncumbentTrajectoryIsMonotoneInModelSense) {
  MilpOptions o;
  o.num_threads = 1;
  const Solution s = solve_milp(knapsack_fixture(22, 17), o);
  ASSERT_TRUE(s.optimal());
  ASSERT_FALSE(s.incumbent_trajectory.empty());
  for (std::size_t i = 1; i < s.incumbent_trajectory.size(); ++i) {
    const IncumbentPoint& prev = s.incumbent_trajectory[i - 1];
    const IncumbentPoint& cur = s.incumbent_trajectory[i];
    EXPECT_LE(prev.t, cur.t) << "timestamps must be non-decreasing";
    // Maximize model: every recorded incumbent strictly improves.
    EXPECT_GT(cur.objective, prev.objective) << "point " << i;
  }
  EXPECT_NEAR(s.incumbent_trajectory.back().objective, s.objective, 1e-9);
}

TEST(TelemetryTest, TrajectoryChainsUserCallback) {
  int calls = 0;
  MilpOptions o;
  o.num_threads = 1;
  o.on_incumbent = [&calls](double) { ++calls; };
  const Solution s = solve_milp(knapsack_fixture(18, 5), o);
  ASSERT_TRUE(s.optimal());
  EXPECT_EQ(static_cast<std::size_t>(calls), s.incumbent_trajectory.size());
}

// ---------------------------------------------------------------------------
// Structured trace
// ---------------------------------------------------------------------------

TEST(TelemetryTest, TraceOffByDefault) {
  const Solution s = solve_milp(knapsack_fixture(12, 1));
  EXPECT_TRUE(s.trace.empty());
  EXPECT_EQ(s.trace.dropped, 0);
}

TEST(TelemetryTest, SequentialTraceAccountsForEveryNode) {
  MilpOptions o;
  o.num_threads = 1;
  o.trace = true;
  const Solution s = solve_milp(knapsack_fixture(18, 5), o);
  ASSERT_TRUE(s.optimal());
  ASSERT_FALSE(s.trace.empty());
  EXPECT_EQ(s.trace.count(obs::EventType::SolveStart), 1u);
  EXPECT_EQ(s.trace.count(obs::EventType::SolveEnd), 1u);
  EXPECT_GE(s.trace.count(obs::EventType::Phase), 3u);  // presolve, root, tree
  // Every explored node opens exactly once and closes exactly once.
  EXPECT_EQ(s.trace.count(obs::EventType::NodeOpen),
            static_cast<std::size_t>(s.nodes_explored));
  EXPECT_EQ(s.trace.count(obs::EventType::NodeClose),
            static_cast<std::size_t>(s.nodes_explored));
  EXPECT_EQ(s.trace.count(obs::EventType::Steal), 0u);
  EXPECT_EQ(s.trace.num_workers(), 1);
  // Merged events are time-sorted.
  for (std::size_t i = 1; i < s.trace.events.size(); ++i) {
    EXPECT_LE(s.trace.events[i - 1].t, s.trace.events[i].t);
  }
  // Incumbent events carry the model-sense objective; the last one is the
  // reported optimum.
  ASSERT_GE(s.trace.count(obs::EventType::Incumbent), 1u);
  double last_inc = 0.0;
  for (const obs::TraceEvent& e : s.trace.events) {
    if (e.type == obs::EventType::Incumbent) last_inc = e.value;
  }
  EXPECT_NEAR(last_inc, s.objective, 1e-9);
}

TEST(TelemetryTest, ParallelTraceRecordsStealsFromMultipleWorkers) {
  MilpOptions o;
  o.num_threads = 4;
  o.trace = true;
  // The ~350k-node tree emits far more than the default ring capacity; give
  // each worker room for the full solve so event counts are exact.
  o.trace_capacity = std::size_t{1} << 19;
  o.time_limit_s = 300;
  const Solution s = solve_milp(hard_knapsack_fixture(50, 42), o);
  ASSERT_TRUE(s.optimal());
  EXPECT_EQ(s.threads_used, 4);
  EXPECT_GE(s.steals, 1);
  EXPECT_GE(s.trace.num_workers(), 2) << "events from at least two workers";
  EXPECT_GE(s.trace.count(obs::EventType::Steal), 1u);
  EXPECT_GE(s.trace.count(obs::EventType::Incumbent), 1u);
  EXPECT_GT(s.trace.count(obs::EventType::NodeOpen), 0u);
  // The ring may overwrite under this workload, but never silently: the
  // merged trace reports exactly what was lost.
  if (s.trace.dropped == 0) {
    EXPECT_EQ(s.trace.count(obs::EventType::Steal),
              static_cast<std::size_t>(s.steals));
  }
}

TEST(TelemetryTest, TracingDoesNotPerturbTheSearch) {
  const Model m = knapsack_fixture(22, 99);
  MilpOptions off;
  off.num_threads = 1;
  MilpOptions on = off;
  on.trace = true;
  const Solution a = solve_milp(m, off);
  const Solution b = solve_milp(m, on);
  ASSERT_TRUE(a.optimal());
  ASSERT_TRUE(b.optimal());
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.simplex_iterations, b.simplex_iterations);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.x, b.x);
}

// ---------------------------------------------------------------------------
// Phase timings + metrics snapshot
// ---------------------------------------------------------------------------

TEST(TelemetryTest, PhaseTimingsArePopulated) {
  MilpOptions o;
  o.num_threads = 1;
  const Solution s = solve_milp(knapsack_fixture(18, 5), o);
  ASSERT_TRUE(s.optimal());
  EXPECT_GE(s.phases.presolve, 0.0);
  EXPECT_GT(s.phases.root_lp, 0.0);
  EXPECT_GE(s.phases.heuristic, 0.0);
  EXPECT_GT(s.phases.tree, 0.0);
  EXPECT_GE(s.phases.extract, 0.0);
  const double total = s.phases.presolve + s.phases.root_lp + s.phases.heuristic +
                       s.phases.tree + s.phases.extract;
  EXPECT_LE(total, s.solve_seconds + 0.5);
}

TEST(TelemetryTest, MetricsSnapshotCoversTheSolve) {
  MilpOptions o;
  o.num_threads = 1;
  const Solution s = solve_milp(knapsack_fixture(18, 5), o);
  ASSERT_TRUE(s.optimal());
  ASSERT_FALSE(s.metrics.empty());
  EXPECT_DOUBLE_EQ(s.metrics.at("milp.nodes"),
                   static_cast<double>(s.nodes_explored));
  EXPECT_DOUBLE_EQ(s.metrics.at("milp.simplex_iterations"),
                   static_cast<double>(s.simplex_iterations));
  EXPECT_DOUBLE_EQ(s.metrics.at("milp.threads"), 1.0);
  EXPECT_DOUBLE_EQ(s.metrics.at("milp.steals"), 0.0);
  EXPECT_NEAR(s.metrics.at("milp.objective"), s.objective, 1e-9);
  EXPECT_GT(s.metrics.at("milp.phase.tree.seconds"), 0.0);
  EXPECT_GE(s.metrics.at("milp.incumbents"), 1.0);
}

TEST(TelemetryTest, ExternalRegistryReceivesTheMetrics) {
  obs::MetricsRegistry reg;
  MilpOptions o;
  o.num_threads = 1;
  o.metrics = &reg;
  const Solution s = solve_milp(knapsack_fixture(12, 1), o);
  ASSERT_TRUE(s.optimal());
  EXPECT_EQ(reg.counter("milp.nodes").value(), s.nodes_explored);
}

// ---------------------------------------------------------------------------
// Live node log
// ---------------------------------------------------------------------------

TEST(TelemetryTest, NodeLogEmitsHeaderAndFinalLine) {
  std::ostringstream log;
  MilpOptions o;
  o.num_threads = 1;
  o.log_interval = 1e-6;  // every due() check fires
  o.log_sink = &log;
  const Solution s = solve_milp(knapsack_fixture(18, 5), o);
  ASSERT_TRUE(s.optimal());
  const std::string out = log.str();
  EXPECT_NE(out.find("Nodes"), std::string::npos);
  EXPECT_NE(out.find("Best Bound"), std::string::npos);
  EXPECT_NE(out.find("Gap%"), std::string::npos);
}

TEST(TelemetryTest, NodeLogOffByDefault) {
  std::ostringstream log;
  MilpOptions o;
  o.num_threads = 1;
  o.log_sink = &log;  // sink alone must not enable logging
  const Solution s = solve_milp(knapsack_fixture(12, 1), o);
  ASSERT_TRUE(s.optimal());
  EXPECT_TRUE(log.str().empty());
}

}  // namespace
}  // namespace archex::milp
