
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch/algorithm_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/algorithm_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/algorithm_test.cpp.o.d"
  "/root/repo/tests/arch/iterative_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/iterative_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/iterative_test.cpp.o.d"
  "/root/repo/tests/arch/legacy_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/legacy_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/legacy_test.cpp.o.d"
  "/root/repo/tests/arch/library_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/library_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/library_test.cpp.o.d"
  "/root/repo/tests/arch/parser_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/parser_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/parser_test.cpp.o.d"
  "/root/repo/tests/arch/patterns_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/patterns_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/patterns_test.cpp.o.d"
  "/root/repo/tests/arch/problem_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/problem_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/problem_test.cpp.o.d"
  "/root/repo/tests/arch/random_exploration_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/random_exploration_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/random_exploration_test.cpp.o.d"
  "/root/repo/tests/arch/result_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/result_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/result_test.cpp.o.d"
  "/root/repo/tests/arch/spec_files_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/spec_files_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/spec_files_test.cpp.o.d"
  "/root/repo/tests/arch/template_test.cpp" "tests/CMakeFiles/archex_tests.dir/arch/template_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/arch/template_test.cpp.o.d"
  "/root/repo/tests/domains/epn_test.cpp" "tests/CMakeFiles/archex_tests.dir/domains/epn_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/domains/epn_test.cpp.o.d"
  "/root/repo/tests/domains/rpl_test.cpp" "tests/CMakeFiles/archex_tests.dir/domains/rpl_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/domains/rpl_test.cpp.o.d"
  "/root/repo/tests/graph/digraph_test.cpp" "tests/CMakeFiles/archex_tests.dir/graph/digraph_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/graph/digraph_test.cpp.o.d"
  "/root/repo/tests/milp/branch_bound_test.cpp" "tests/CMakeFiles/archex_tests.dir/milp/branch_bound_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/milp/branch_bound_test.cpp.o.d"
  "/root/repo/tests/milp/expr_test.cpp" "tests/CMakeFiles/archex_tests.dir/milp/expr_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/milp/expr_test.cpp.o.d"
  "/root/repo/tests/milp/lp_format_test.cpp" "tests/CMakeFiles/archex_tests.dir/milp/lp_format_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/milp/lp_format_test.cpp.o.d"
  "/root/repo/tests/milp/presolve_test.cpp" "tests/CMakeFiles/archex_tests.dir/milp/presolve_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/milp/presolve_test.cpp.o.d"
  "/root/repo/tests/milp/simplex_test.cpp" "tests/CMakeFiles/archex_tests.dir/milp/simplex_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/milp/simplex_test.cpp.o.d"
  "/root/repo/tests/milp/solver_features_test.cpp" "tests/CMakeFiles/archex_tests.dir/milp/solver_features_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/milp/solver_features_test.cpp.o.d"
  "/root/repo/tests/reliability/reliability_test.cpp" "tests/CMakeFiles/archex_tests.dir/reliability/reliability_test.cpp.o" "gcc" "tests/CMakeFiles/archex_tests.dir/reliability/reliability_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archex_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archex_reliability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
