# Empty compiler generated dependencies file for archex_tests.
# This may be replaced when dependencies are built.
