file(REMOVE_RECURSE
  "libarchex_reliability.a"
)
