# Empty dependencies file for archex_reliability.
# This may be replaced when dependencies are built.
