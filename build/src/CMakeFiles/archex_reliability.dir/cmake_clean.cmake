file(REMOVE_RECURSE
  "CMakeFiles/archex_reliability.dir/reliability/reliability.cpp.o"
  "CMakeFiles/archex_reliability.dir/reliability/reliability.cpp.o.d"
  "libarchex_reliability.a"
  "libarchex_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archex_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
