file(REMOVE_RECURSE
  "libarchex_graph.a"
)
