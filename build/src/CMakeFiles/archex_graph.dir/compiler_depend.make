# Empty compiler generated dependencies file for archex_graph.
# This may be replaced when dependencies are built.
