file(REMOVE_RECURSE
  "CMakeFiles/archex_graph.dir/graph/digraph.cpp.o"
  "CMakeFiles/archex_graph.dir/graph/digraph.cpp.o.d"
  "libarchex_graph.a"
  "libarchex_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archex_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
