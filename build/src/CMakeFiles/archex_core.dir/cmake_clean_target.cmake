file(REMOVE_RECURSE
  "libarchex_core.a"
)
