
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/algorithm.cpp" "src/CMakeFiles/archex_core.dir/arch/algorithm.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/algorithm.cpp.o.d"
  "/root/repo/src/arch/arch_template.cpp" "src/CMakeFiles/archex_core.dir/arch/arch_template.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/arch_template.cpp.o.d"
  "/root/repo/src/arch/decision_vars.cpp" "src/CMakeFiles/archex_core.dir/arch/decision_vars.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/decision_vars.cpp.o.d"
  "/root/repo/src/arch/legacy_encoder.cpp" "src/CMakeFiles/archex_core.dir/arch/legacy_encoder.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/legacy_encoder.cpp.o.d"
  "/root/repo/src/arch/library.cpp" "src/CMakeFiles/archex_core.dir/arch/library.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/library.cpp.o.d"
  "/root/repo/src/arch/parser.cpp" "src/CMakeFiles/archex_core.dir/arch/parser.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/parser.cpp.o.d"
  "/root/repo/src/arch/patterns/builtin.cpp" "src/CMakeFiles/archex_core.dir/arch/patterns/builtin.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/patterns/builtin.cpp.o.d"
  "/root/repo/src/arch/patterns/connection.cpp" "src/CMakeFiles/archex_core.dir/arch/patterns/connection.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/patterns/connection.cpp.o.d"
  "/root/repo/src/arch/patterns/flow.cpp" "src/CMakeFiles/archex_core.dir/arch/patterns/flow.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/patterns/flow.cpp.o.d"
  "/root/repo/src/arch/patterns/general.cpp" "src/CMakeFiles/archex_core.dir/arch/patterns/general.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/patterns/general.cpp.o.d"
  "/root/repo/src/arch/patterns/pattern.cpp" "src/CMakeFiles/archex_core.dir/arch/patterns/pattern.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/patterns/pattern.cpp.o.d"
  "/root/repo/src/arch/patterns/reliability_patterns.cpp" "src/CMakeFiles/archex_core.dir/arch/patterns/reliability_patterns.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/patterns/reliability_patterns.cpp.o.d"
  "/root/repo/src/arch/patterns/timing.cpp" "src/CMakeFiles/archex_core.dir/arch/patterns/timing.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/patterns/timing.cpp.o.d"
  "/root/repo/src/arch/problem.cpp" "src/CMakeFiles/archex_core.dir/arch/problem.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/problem.cpp.o.d"
  "/root/repo/src/arch/result.cpp" "src/CMakeFiles/archex_core.dir/arch/result.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/arch/result.cpp.o.d"
  "/root/repo/src/domains/epn.cpp" "src/CMakeFiles/archex_core.dir/domains/epn.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/domains/epn.cpp.o.d"
  "/root/repo/src/domains/rpl.cpp" "src/CMakeFiles/archex_core.dir/domains/rpl.cpp.o" "gcc" "src/CMakeFiles/archex_core.dir/domains/rpl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/archex_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archex_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/archex_reliability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
