# Empty compiler generated dependencies file for archex_core.
# This may be replaced when dependencies are built.
