file(REMOVE_RECURSE
  "CMakeFiles/archex_milp.dir/milp/branch_bound.cpp.o"
  "CMakeFiles/archex_milp.dir/milp/branch_bound.cpp.o.d"
  "CMakeFiles/archex_milp.dir/milp/expr.cpp.o"
  "CMakeFiles/archex_milp.dir/milp/expr.cpp.o.d"
  "CMakeFiles/archex_milp.dir/milp/lp_format.cpp.o"
  "CMakeFiles/archex_milp.dir/milp/lp_format.cpp.o.d"
  "CMakeFiles/archex_milp.dir/milp/model.cpp.o"
  "CMakeFiles/archex_milp.dir/milp/model.cpp.o.d"
  "CMakeFiles/archex_milp.dir/milp/presolve.cpp.o"
  "CMakeFiles/archex_milp.dir/milp/presolve.cpp.o.d"
  "CMakeFiles/archex_milp.dir/milp/simplex.cpp.o"
  "CMakeFiles/archex_milp.dir/milp/simplex.cpp.o.d"
  "libarchex_milp.a"
  "libarchex_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archex_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
