# Empty compiler generated dependencies file for archex_milp.
# This may be replaced when dependencies are built.
