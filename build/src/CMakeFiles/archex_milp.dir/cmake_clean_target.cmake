file(REMOVE_RECURSE
  "libarchex_milp.a"
)
