file(REMOVE_RECURSE
  "CMakeFiles/epn_explorer.dir/epn_explorer.cpp.o"
  "CMakeFiles/epn_explorer.dir/epn_explorer.cpp.o.d"
  "epn_explorer"
  "epn_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epn_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
