# Empty dependencies file for epn_explorer.
# This may be replaced when dependencies are built.
