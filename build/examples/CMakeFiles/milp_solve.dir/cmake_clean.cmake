file(REMOVE_RECURSE
  "CMakeFiles/milp_solve.dir/milp_solve.cpp.o"
  "CMakeFiles/milp_solve.dir/milp_solve.cpp.o.d"
  "milp_solve"
  "milp_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milp_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
