# Empty compiler generated dependencies file for milp_solve.
# This may be replaced when dependencies are built.
