# Empty dependencies file for rpl_explorer.
# This may be replaced when dependencies are built.
