file(REMOVE_RECURSE
  "CMakeFiles/rpl_explorer.dir/rpl_explorer.cpp.o"
  "CMakeFiles/rpl_explorer.dir/rpl_explorer.cpp.o.d"
  "rpl_explorer"
  "rpl_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpl_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
