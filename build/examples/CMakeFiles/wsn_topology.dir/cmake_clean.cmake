file(REMOVE_RECURSE
  "CMakeFiles/wsn_topology.dir/wsn_topology.cpp.o"
  "CMakeFiles/wsn_topology.dir/wsn_topology.cpp.o.d"
  "wsn_topology"
  "wsn_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
