file(REMOVE_RECURSE
  "CMakeFiles/bench_timing_encoding.dir/bench_timing_encoding.cpp.o"
  "CMakeFiles/bench_timing_encoding.dir/bench_timing_encoding.cpp.o.d"
  "bench_timing_encoding"
  "bench_timing_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timing_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
