# Empty compiler generated dependencies file for bench_milp.
# This may be replaced when dependencies are built.
