file(REMOVE_RECURSE
  "CMakeFiles/bench_milp.dir/bench_milp.cpp.o"
  "CMakeFiles/bench_milp.dir/bench_milp.cpp.o.d"
  "bench_milp"
  "bench_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
