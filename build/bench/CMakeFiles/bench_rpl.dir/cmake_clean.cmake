file(REMOVE_RECURSE
  "CMakeFiles/bench_rpl.dir/bench_rpl.cpp.o"
  "CMakeFiles/bench_rpl.dir/bench_rpl.cpp.o.d"
  "bench_rpl"
  "bench_rpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
