# Empty dependencies file for bench_rpl.
# This may be replaced when dependencies are built.
