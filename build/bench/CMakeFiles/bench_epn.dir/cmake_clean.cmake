file(REMOVE_RECURSE
  "CMakeFiles/bench_epn.dir/bench_epn.cpp.o"
  "CMakeFiles/bench_epn.dir/bench_epn.cpp.o.d"
  "bench_epn"
  "bench_epn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
