# Empty dependencies file for bench_epn.
# This may be replaced when dependencies are built.
