file(REMOVE_RECURSE
  "CMakeFiles/bench_spec_size.dir/bench_spec_size.cpp.o"
  "CMakeFiles/bench_spec_size.dir/bench_spec_size.cpp.o.d"
  "bench_spec_size"
  "bench_spec_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spec_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
