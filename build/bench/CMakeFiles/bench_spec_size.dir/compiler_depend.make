# Empty compiler generated dependencies file for bench_spec_size.
# This may be replaced when dependencies are built.
