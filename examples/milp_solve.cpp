/// \file milp_solve.cpp
/// Standalone MILP solver CLI over the in-repo engine: reads a CPLEX-LP
/// format file, solves it, prints status / objective / nonzero assignment.
/// The "Solver" box of Figure 1 as a reusable tool.
///
/// Usage: milp_solve <model.lp> [--budget=S] [--max-nodes=N] [--threads=N]
///                   [--lp-relaxation] [--trace-json=FILE] [--profile-json=FILE]
///                   [--log-interval=S] [--timing] [--certify] [--no-certify]
///                   [--inject=site:n[:seed]] [--checkpoint=FILE]
///                   [--checkpoint-interval=S] [--resume]
///
/// `--budget=S` is the wall-clock allowance (milp::Budget); `--time-limit=S`
/// remains as its deprecated alias.
///
/// Exit codes follow the termination reason: 0 optimal, 3 infeasible,
/// 4 unbounded, 5 node limit, 6 time limit, 7 iteration limit, 8 numerical
/// failure, 9 certificate violation, 2 usage/parse error.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "check/certify.hpp"
#include "milp/branch_bound.hpp"
#include "milp/fault.hpp"
#include "milp/lp_format.hpp"
#include "milp/simplex.hpp"
#include "obs/span.hpp"

using namespace archex::milp;

namespace {

int exit_code(TermReason r) {
  switch (r) {
    case TermReason::Optimal: return 0;
    case TermReason::Infeasible: return 3;
    case TermReason::Unbounded: return 4;
    case TermReason::NodeLimit: return 5;
    case TermReason::TimeLimit: return 6;
    case TermReason::IterationLimit: return 7;
    case TermReason::Numerical: return 8;
  }
  return 8;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: milp_solve <model.lp> [--budget=S] [--max-nodes=N]"
      " [--threads=N] [--lp-relaxation]\n"
      "                  [--trace-json=FILE] [--profile-json=FILE]"
      " [--log-interval=S] [--timing]\n"
      "                  [--certify] [--no-certify]\n"
      "                  [--inject=site:n[:seed]] [--checkpoint=FILE]"
      " [--checkpoint-interval=S] [--resume]\n"
      "  fault sites: singular, nan-pivot, deadline, stall, bad-alloc"
      " (see docs/diagnostics.md)\n");
}

/// Parses the numeric tail of `arg` with `conv` (std::stod / std::stoi /
/// std::stoll wrappers). A malformed or trailing-garbage value prints the
/// usage text and exits 2 instead of aborting on an uncaught exception.
template <typename T, typename Conv>
bool parse_num(const std::string& arg, std::size_t prefix_len, Conv conv,
               T& out) {
  const std::string tail = arg.substr(prefix_len);
  try {
    std::size_t pos = 0;
    out = conv(tail, &pos);
    if (pos != tail.size() || tail.empty()) throw std::invalid_argument(tail);
    return true;
  } catch (const std::exception&) {
    std::fprintf(stderr, "bad value in argument: %s\n", arg.c_str());
    usage();
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  double time_limit = 300.0;
  std::int64_t max_nodes = -1;  // -1 = keep the library default
  int threads = 0;              // 0 = hardware concurrency
  bool relaxation = false;
  bool timing = false;
  bool certify = true;  // independent certification of the answer (default on)
  double log_interval = 0.0;
  std::string trace_path;
  std::string profile_path;
  FaultPlan fault;
  bool fault_armed = false;
  std::string checkpoint_file;
  double checkpoint_interval = 30.0;
  bool resume = false;
  auto to_d = [](const std::string& s, std::size_t* pos) { return std::stod(s, pos); };
  auto to_i = [](const std::string& s, std::size_t* pos) { return std::stoi(s, pos); };
  auto to_ll = [](const std::string& s, std::size_t* pos) { return std::stoll(s, pos); };
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--budget=", 0) == 0) {
      if (!parse_num(a, 9, to_d, time_limit)) return 2;
    } else if (a.rfind("--time-limit=", 0) == 0) {  // deprecated alias
      if (!parse_num(a, 13, to_d, time_limit)) return 2;
    } else if (a.rfind("--max-nodes=", 0) == 0) {
      long long v = 0;
      if (!parse_num(a, 12, to_ll, v)) return 2;
      max_nodes = v;
    } else if (a.rfind("--threads=", 0) == 0) {
      if (!parse_num(a, 10, to_i, threads)) return 2;
    } else if (a == "--lp-relaxation") {
      relaxation = true;
    } else if (a.rfind("--trace-json=", 0) == 0) {
      trace_path = a.substr(13);
    } else if (a.rfind("--profile-json=", 0) == 0) {
      profile_path = a.substr(15);
    } else if (a.rfind("--log-interval=", 0) == 0) {
      if (!parse_num(a, 15, to_d, log_interval)) return 2;
    } else if (a == "--timing") {
      timing = true;
    } else if (a == "--certify") {
      certify = true;
    } else if (a == "--no-certify") {
      certify = false;
    } else if (a.rfind("--inject=", 0) == 0) {
      if (!fault.arm_from_spec(a.substr(9))) {
        std::fprintf(stderr, "bad fault spec: %s\n", a.c_str());
        usage();
        return 2;
      }
      fault_armed = true;
    } else if (a.rfind("--checkpoint=", 0) == 0) {
      checkpoint_file = a.substr(13);
    } else if (a.rfind("--checkpoint-interval=", 0) == 0) {
      if (!parse_num(a, 22, to_d, checkpoint_interval)) return 2;
    } else if (a == "--resume") {
      resume = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      usage();
      return 2;
    }
  }
  if (resume && checkpoint_file.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint=FILE\n");
    usage();
    return 2;
  }

  try {
    const Model model = parse_lp_file(argv[1]);
    const ModelStats st = model.stats();
    std::printf("model: %zu variables (%zu binary, %zu integer), %zu constraints, %zu nnz\n",
                st.num_vars, st.num_binary, st.num_integer, st.num_constraints,
                st.num_nonzeros);

    // Span profiler for --profile-json: lives on the stack here, read only
    // after solve_milp's workers have joined.
    archex::obs::SpanProfiler profiler;
    const bool profiling = !profile_path.empty();

    Solution sol;
    if (relaxation) {
      SimplexOptions lp_opts;
      if (profiling) lp_opts.spans = profiler.main();
      sol = solve_lp_relaxation(model, lp_opts);
    } else {
      MilpOptions opts;
      if (profiling) opts.profiler = &profiler;
      opts.budget = Budget::of_seconds(time_limit);
      if (max_nodes >= 0) opts.max_nodes = max_nodes;
      opts.num_threads = threads;
      opts.trace = !trace_path.empty();
      opts.certify = certify;
      if (fault_armed) opts.fault = &fault;
      opts.checkpoint_file = checkpoint_file;
      opts.checkpoint_interval_s = checkpoint_interval;
      opts.resume = resume;
      if (log_interval > 0.0) {
        opts.log_interval = log_interval;
        opts.log_sink = &std::cout;
      }
      sol = solve_milp(model, opts);
      if (resume) {
        const auto it = sol.metrics.find("milp.checkpoint.loaded");
        std::printf("resume: %s\n",
                    it != sol.metrics.end() && it->second > 0.0
                        ? "checkpoint loaded"
                        : "checkpoint rejected, fresh solve");
      }
    }
    archex::check::Certificate cert;
    if (certify && sol.has_incumbent) {
      if (relaxation) {
        // The answer solves the relaxation, so certify against it: integrality
        // of the original columns is not a property the relaxation promises.
        Model relaxed = model;
        for (std::size_t j = 0; j < relaxed.num_vars(); ++j) {
          relaxed.var(VarId{static_cast<std::int32_t>(j)}).type = VarType::Continuous;
        }
        cert = archex::check::certify(relaxed, sol);
      } else {
        cert = archex::check::certify(model, sol);
      }
    }
    std::printf("status: %s\n", to_string(sol.status));
    if (sol.degraded) {
      std::printf("degraded: %lld subtree(s) abandoned by the recovery ladder;"
                  " bound stays sound\n",
                  static_cast<long long>(sol.degraded_nodes));
    }
    if (sol.has_incumbent || sol.status == SolveStatus::Optimal) {
      std::printf("objective: %.10g\n", sol.objective);
      std::printf("nodes: %lld, simplex iterations: %lld, time: %.3fs\n",
                  static_cast<long long>(sol.nodes_explored),
                  static_cast<long long>(sol.simplex_iterations), sol.solve_seconds);
      if (sol.threads_used > 1) {
        std::printf("threads: %d, steals: %lld, cpu time: %.3fs\n", sol.threads_used,
                    static_cast<long long>(sol.steals), sol.cpu_seconds);
      }
      for (std::size_t j = 0; j < sol.x.size(); ++j) {
        if (std::abs(sol.x[j]) > 1e-9) {
          const std::string& name = model.vars()[j].name;
          std::printf("  %s = %.10g\n",
                      name.empty() ? ("x" + std::to_string(j)).c_str() : name.c_str(),
                      sol.x[j]);
        }
      }
    }
    if (timing) {
      const SolvePhases& p = sol.phases;
      std::printf("phases: presolve %.3fs, root LP %.3fs, heuristic %.3fs,"
                  " tree %.3fs, extract %.3fs\n",
                  p.presolve, p.root_lp, p.heuristic, p.tree, p.extract);
    }
    if (cert.checked) std::printf("%s\n", cert.summary().c_str());
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write trace to %s\n", trace_path.c_str());
        return 2;
      }
      sol.trace.write_jsonl(out);
      std::fprintf(stderr, "trace: %zu events (%lld dropped) -> %s\n",
                   sol.trace.events.size(),
                   static_cast<long long>(sol.trace.dropped), trace_path.c_str());
    }
    if (profiling) {
      std::ofstream out(profile_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write profile to %s\n",
                     profile_path.c_str());
        return 2;
      }
      profiler.write_chrome_trace(out);
      const auto rep = profiler.collect();
      std::fprintf(stderr, "profile: %zu spans (%lld dropped) -> %s\n",
                   rep.spans.size(), static_cast<long long>(rep.dropped),
                   profile_path.c_str());
    }
    if (cert.checked && !cert.ok()) return 9;
    return exit_code(sol.term_reason);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
