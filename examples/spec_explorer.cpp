/// \file spec_explorer.cpp
/// The text-file front end of Figure 1: "The input to the toolbox consists
/// of two text files: problem description and library."
///
/// Usage:
///   spec_explorer <problem.spec> <components.lib> [--budget=SECONDS]
///
/// `--time-limit=SECONDS` is the deprecated alias of `--budget` (both route
/// through milp::Budget).
///
/// Domain patterns (has_sufficient_power, has_operation_mode) are registered
/// before parsing, so the shipped data/epn.spec and data/rpl.spec both load
/// through the same generic front end — the extensibility story of Sec. 3.
#include <iostream>
#include <string>

#include "arch/parser.hpp"
#include "domains/epn.hpp"
#include "domains/rpl.hpp"
#include "milp/budget.hpp"

using namespace archex;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: spec_explorer <problem.spec> <components.lib> [--budget=S]\n";
    return 2;
  }
  double budget = 120.0;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) budget = std::stod(arg.substr(9));
    else if (arg.rfind("--time-limit=", 0) == 0) budget = std::stod(arg.substr(13));  // deprecated alias
  }

  // Make the domain-specific patterns resolvable from spec files.
  domains::epn::register_epn_patterns();
  domains::rpl::register_rpl_patterns();

  try {
    const ProblemSpec spec = load_problem_spec_file(argv[1]);
    Library lib = load_library_file(argv[2]);
    std::cout << "Loaded " << spec.tmpl.num_nodes() << " template nodes, "
              << spec.tmpl.candidate_edges().size() << " candidate edges, "
              << spec.patterns.size() << " pattern instances from " << spec.spec_lines
              << " specification lines.\n";

    std::unique_ptr<Problem> problem = instantiate(spec, std::move(lib));
    problem->add_symmetry_breaking();
    const milp::ModelStats stats = problem->model().stats();
    std::cout << "Generated MILP: " << stats.num_vars << " variables, "
              << stats.num_constraints << " constraints (" << stats.standard_form_lines
              << " standard-form lines) — abstraction ratio "
              << stats.standard_form_lines / std::max(1, spec.spec_lines) << "x.\n\n";

    milp::MilpOptions opts;
    opts.budget = milp::Budget::of_seconds(budget);
    const ExplorationResult res = problem->solve(opts);
    std::cout << "status: " << milp::to_string(res.solution.status) << " after "
              << res.solver_seconds << "s, " << res.solution.nodes_explored << " nodes\n";
    if (!res.feasible()) return 1;
    std::cout << "cost: " << res.architecture.cost << "\n";
    res.architecture.print(std::cout);
    res.print_timing(std::cout);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
