/// \file quickstart.cpp
/// Five-minute tour of the ArchEx-cpp API: build a library and a template,
/// state requirements with patterns, solve, inspect the architecture.
///
/// The system is a small sensor-processing pipeline: sensors produce
/// readings, processing units aggregate them, one gateway uploads them.
/// The explorer decides how many processors to deploy, which model each one
/// is, and how everything is wired — minimizing cost under throughput,
/// timing and redundancy requirements.
#include <iostream>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/flow.hpp"
#include "arch/patterns/general.hpp"
#include "arch/patterns/timing.hpp"
#include "arch/problem.hpp"

using namespace archex;

int main() {
  // --- 1. The component library L: "real" components with attributes. ---
  Library lib;
  lib.set_edge_cost(5.0);  // every link costs 5 (cabling)
  lib.add({"SenStd", "Sensor", "", {}, {{attr::kCost, 10}, {attr::kFlowRate, 4}, {attr::kDelay, 1}}});
  lib.add({"ProcSlow", "Proc", "eco", {}, {{attr::kCost, 40}, {attr::kThroughput, 6}, {attr::kDelay, 5}}});
  lib.add({"ProcFast", "Proc", "turbo", {}, {{attr::kCost, 90}, {attr::kThroughput, 16}, {attr::kDelay, 2}}});
  lib.add({"GwStd", "Gateway", "", {}, {{attr::kCost, 25}, {attr::kDelay, 1}}});

  // --- 2. The template T = (V, E): "virtual" components + candidate wiring. ---
  ArchTemplate tmpl;
  tmpl.add_nodes(3, "Sen", "Sensor");
  tmpl.add_nodes(3, "Proc", "Proc");
  tmpl.add_node({"Gw", "Gateway", "", {}, {}});
  tmpl.allow_connection(NodeFilter::of_type("Sensor"), NodeFilter::of_type("Proc"));
  tmpl.allow_connection(NodeFilter::of_type("Proc"), NodeFilter::of_type("Gateway"));

  // --- 3. The exploration problem + requirements as patterns. ---
  Problem problem(lib, tmpl);
  problem.set_functional_flow({"Sensor", "Proc", "Gateway"});

  using namespace archex::patterns;
  // All three sensors deployed, each wired to exactly one processor.
  problem.apply(AtLeastNComponents(NodeFilter::of_type("Sensor"), 3));
  problem.apply(NConnections(NodeFilter::of_type("Sensor"), NodeFilter::of_type("Proc"), 1,
                             milp::Sense::EQ, false, CountSide::kFrom));
  // A processor that is used must upload to the gateway.
  problem.apply(NConnections(NodeFilter::of_type("Proc"), NodeFilter::of_type("Gateway"), 1,
                             milp::Sense::GE, true, CountSide::kFrom));
  // Readings flow: each sensor emits 4 units; processors must keep up.
  problem.flow("readings", 16.0);
  problem.apply(SourceRate("readings", NodeFilter::of_type("Sensor"), 4.0));
  problem.apply(FlowBalance(NodeFilter::of_type("Proc"), {"readings"}));
  problem.apply(SinkDemand("readings", NodeFilter::of_type("Gateway"), 12.0));
  problem.apply(NoOverloads(NodeFilter::of_type("Proc"), {{"readings"}}));
  // End-to-end latency bound: sensor + processor + gateway delays <= 8.
  problem.apply(MaxCycleTime(NodeFilter::of_type("Gateway"), 8.0));

  problem.add_symmetry_breaking();

  // --- 4. Solve (eager / monolithic MILP) and inspect. ---
  std::cout << "Requirements applied:\n";
  for (const std::string& s : problem.applied_patterns()) std::cout << "  " << s << "\n";
  const milp::ModelStats stats = problem.model().stats();
  std::cout << "Generated MILP: " << stats.num_vars << " variables, " << stats.num_constraints
            << " constraints\n\n";

  ExplorationResult res = problem.solve();
  if (!res.feasible()) {
    std::cout << "No architecture satisfies the requirements ("
              << milp::to_string(res.solution.status) << ")\n";
    return 1;
  }
  std::cout << "Solved: " << milp::to_string(res.solution.status) << " in "
            << res.solver_seconds << "s (" << res.solution.nodes_explored
            << " branch-and-bound nodes)\n";
  res.architecture.print(std::cout);
  res.print_timing(std::cout);
  std::cout << "\nGraphviz:\n" << res.architecture.to_dot();
  return 0;
}
