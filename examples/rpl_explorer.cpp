/// \file rpl_explorer.cpp
/// The Reconfigurable Production Line case study (paper Sec. 4.2).
///
/// Usage:
///   rpl_explorer [--idle=N] [--budget=SECONDS] [--dot]
///
/// `--time-limit=SECONDS` is the deprecated alias of `--budget` (both route
/// through milp::Budget, the stack's one time knob).
///
/// Without --idle this reproduces the Fig. 4a experiment (line B reused for
/// product A in operation mode Omega2); with --idle=10 it reproduces
/// Fig. 4b (the idle-rate requirement drives parallel slower machines,
/// cutting the total idle rate ~3.5x).
#include <iostream>
#include <string>

#include "domains/rpl.hpp"
#include "milp/budget.hpp"

using namespace archex;
using namespace archex::domains::rpl;

int main(int argc, char** argv) {
  RplConfig cfg;
  double budget = 120.0;
  bool dot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--idle=", 0) == 0) cfg.max_total_idle = std::stod(arg.substr(7));
    else if (arg.rfind("--budget=", 0) == 0) budget = std::stod(arg.substr(9));
    else if (arg.rfind("--time-limit=", 0) == 0) budget = std::stod(arg.substr(13));  // deprecated alias
    else if (arg == "--dot") dot = true;
    else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  std::cout << "=== Reconfigurable production line exploration ===\n"
            << "modes: Omega1 (A@" << cfg.rate_a << " + B@" << cfg.rate_b
            << ", no borrowing), Omega2 (A@" << 2 * cfg.rate_a << ", line B stalled)\n";
  if (cfg.max_total_idle > 0) {
    std::cout << "requirement: total idle rate <= " << cfg.max_total_idle << " parts/min\n";
  }

  auto problem = make_problem(cfg);
  const milp::ModelStats stats = problem->model().stats();
  std::cout << "Spec: " << problem->num_patterns_applied() << " pattern instances; MILP: "
            << stats.num_vars << " variables, " << stats.num_constraints << " constraints\n\n";

  milp::MilpOptions opts;
  opts.budget = milp::Budget::of_seconds(budget);
  ExplorationResult res = problem->solve(opts);
  std::cout << "status: " << milp::to_string(res.solution.status) << ", solver time "
            << res.solver_seconds << "s, " << res.solution.nodes_explored << " nodes\n";
  res.print_degradation(std::cout);
  if (!res.feasible()) return 1;

  std::cout << "cost: " << res.architecture.cost << "\n";
  res.architecture.print(std::cout);
  std::cout << "total idle rate (both modes): " << total_idle_rate(*problem, res.architecture)
            << " parts/min\n";

  // Show the Omega2 reuse explicitly: product-A flow through line-B nodes.
  double borrowed = 0.0;
  const auto it = res.architecture.flows.find("O2:A");
  if (it != res.architecture.flows.end()) {
    for (const FlowEdge& e : it->second) {
      const auto& to = res.architecture.nodes[static_cast<std::size_t>(e.to)];
      if (to.name.find('B') != std::string::npos && to.type == "Machine") {
        borrowed += e.rate;
      }
    }
  }
  std::cout << "product A processed on line B in Omega2: " << borrowed << " parts/min"
            << (borrowed > 0 ? "  (line B reused, as in Fig. 4a)" : "") << "\n";
  res.print_timing(std::cout);
  if (dot) std::cout << res.architecture.to_dot();
  return 0;
}
