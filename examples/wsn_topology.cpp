/// \file wsn_topology.cpp
/// Topology synthesis for an indoor wireless sensor network — the paper's
/// stated future-work direction (Sec. 5, after [14]) — built *entirely from
/// the generic pattern set*. No WSN-specific code: the same patterns that
/// shaped the avionics and factory case studies express radio-hop limits,
/// relay workload, and redundant routing, which is the cross-domain-reuse
/// claim of Sec. 3 in action.
///
/// Scenario: battery sensors report to a wired gateway, optionally through
/// relay nodes. Each candidate link is a radio hop; relays have limited
/// forwarding throughput; critical sensors need two node-disjoint routes.
#include <iostream>

#include "arch/patterns/connection.hpp"
#include "arch/patterns/flow.hpp"
#include "arch/patterns/general.hpp"
#include "arch/patterns/timing.hpp"
#include "arch/problem.hpp"
#include "graph/digraph.hpp"

using namespace archex;
using namespace archex::patterns;

int main() {
  Library lib;
  lib.set_edge_cost(1.0);  // radio link provisioning cost
  lib.add({"SensorNode", "Sensor", "", {}, {{attr::kCost, 8}, {attr::kFlowRate, 2}, {attr::kDelay, 1}}});
  lib.add({"RelayLite", "Relay", "lite", {}, {{attr::kCost, 12}, {attr::kThroughput, 4}, {attr::kDelay, 2}}});
  lib.add({"RelayPro", "Relay", "pro", {}, {{attr::kCost, 30}, {attr::kThroughput, 12}, {attr::kDelay, 1}}});
  lib.add({"GatewayStd", "Gateway", "", {}, {{attr::kCost, 50}, {attr::kDelay, 1}}});

  ArchTemplate tmpl;
  tmpl.add_nodes(4, "S", "Sensor");
  tmpl.add_nodes(4, "R", "Relay");
  tmpl.add_node({"GW", "Gateway", "", {}, {}});
  // Radio reachability: sensors reach relays; relays reach each other and
  // the gateway (one hop of relay-to-relay forwarding allowed).
  tmpl.allow_connection(NodeFilter::of_type("Sensor"), NodeFilter::of_type("Relay"));
  tmpl.allow_connection(NodeFilter::of_type("Relay"), NodeFilter::of_type("Relay"));
  tmpl.allow_connection(NodeFilter::of_type("Relay"), NodeFilter::of_type("Gateway"));

  Problem problem(lib, tmpl);
  problem.set_functional_flow({"Sensor", "Relay", "Gateway"});

  // All sensors deployed and routed to the gateway.
  problem.apply(AtLeastNComponents(NodeFilter::of_type("Sensor"), 4));
  problem.apply(SinksConnectedToSources(NodeFilter::of_type("Sensor"),
                                        NodeFilter::of_type("Gateway")));
  // Each sensor associates with at most 2 relays (radio budget); a used
  // relay must have an uplink (relay or gateway).
  problem.apply(NConnections(NodeFilter::of_type("Sensor"), NodeFilter::of_type("Relay"), 2,
                             milp::Sense::LE, false, CountSide::kFrom));
  problem.apply(NConnections(NodeFilter::of_type("Sensor"), NodeFilter::of_type("Relay"), 1,
                             milp::Sense::GE, false, CountSide::kFrom));
  problem.apply(NConnections(NodeFilter::of_type("Relay"), {}, 1, milp::Sense::GE, true,
                             CountSide::kFrom));
  // Traffic: each sensor emits 2 units; relay forwarding capacity binds.
  problem.flow("traffic", 16.0);
  problem.apply(SourceRate("traffic", NodeFilter::of_type("Sensor"), 2.0));
  problem.apply(FlowBalance(NodeFilter::of_type("Relay"), {"traffic"}));
  problem.apply(SinkDemand("traffic", NodeFilter::of_type("Gateway"), 8.0));
  problem.apply(NoOverloads(NodeFilter::of_type("Relay"), {{"traffic"}}));
  // Latency: sensor -> ... -> gateway within 5 time units.
  problem.apply(MaxCycleTime(NodeFilter::of_type("Gateway"), 5.0));
  // Resilience: the gateway stays reachable over >= 2 node-disjoint routes.
  problem.apply(AtLeastNPaths(NodeFilter::of_type("Sensor"), NodeFilter::of_type("Gateway"),
                              2));
  problem.add_symmetry_breaking();

  std::cout << "=== WSN topology synthesis (generic patterns only) ===\n";
  for (const std::string& s : problem.applied_patterns()) std::cout << "  " << s << "\n";

  milp::MilpOptions opts;
  opts.budget = milp::Budget::of_seconds(120);
  ExplorationResult res = problem.solve(opts);
  std::cout << "status: " << milp::to_string(res.solution.status) << " in "
            << res.solver_seconds << "s\n";
  if (!res.feasible()) return 1;

  res.architecture.print(std::cout);

  // Verify the redundancy post-hoc with the graph substrate.
  const graph::Digraph g = res.architecture.to_digraph();
  const NodeId gw = tmpl.find("GW");
  const int disjoint =
      graph::vertex_disjoint_paths(g, tmpl.select(NodeFilter::of_type("Sensor")), gw);
  std::cout << "node-disjoint sensor->gateway routes: " << disjoint << " (required >= 2)\n";
  return disjoint >= 2 ? 0 : 1;
}
