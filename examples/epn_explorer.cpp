/// \file epn_explorer.cpp
/// The aircraft Electrical Power Network case study (paper Sec. 4.1).
///
/// Usage:
///   epn_explorer [--mode=lazy|monolithic] [--scale=tiny|small|paper]
///                [--budget=SECONDS] [--max-nodes=N] [--dot]
///                [--write-lp=FILE] [--profile-json=FILE] [--perf-report]
///                [--sweep=N]
///
/// `--budget` is the wall-clock allowance (milp::Budget, the one time knob
/// of the stack); `--time-limit=SECONDS` remains as its deprecated alias.
/// `--sweep=N` demonstrates the compiled pipeline (docs/pipeline.md):
/// compile the spec once, then solve N cost-perturbation scenarios
/// against the frozen artifact, warm-starting each from the previous
/// optimal basis.
///
/// `lazy` runs the iterative MILP-modulo-reliability algorithm (Fig. 3);
/// `monolithic` encodes the reliability requirements eagerly (Fig. 2b).
/// `--scale=paper` uses the Table 2 template sizes (the monolithic run at
/// paper scale is expensive by design — the paper reports hours on CPLEX).
/// `--write-lp=FILE` exports the assembled MILP in CPLEX-LP text instead of
/// solving (CI feeds the export to `milp_solve --trace-json`).
/// `--profile-json=FILE` records hierarchical spans (encode -> per-pattern,
/// solve phases, sampled simplex kernels) and writes a Chrome trace-event
/// file loadable in Perfetto. `--perf-report` prints the per-pattern cost
/// attribution table (arch/perf_report.hpp) after the solve.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "arch/compiled_model.hpp"
#include "arch/perf_report.hpp"
#include "domains/epn.hpp"
#include "milp/budget.hpp"
#include "obs/span.hpp"

using namespace archex;
using namespace archex::domains::epn;

namespace {

struct Args {
  std::string mode = "lazy";
  std::string scale = "small";
  // One budget across the whole lazy loop (solve + analyze + learn, end to
  // end — see docs/solver.md); solve_iteratively slices re-solves so a
  // non-closing iteration cannot starve the ones after it.
  double budget = 300.0;
  int sweep = 0;
  // Optional per-iteration node cap (0 = off) for deterministic bounding
  // of each iteration's search independent of wall clock.
  std::int64_t max_nodes = 0;
  bool dot = false;
  std::string write_lp;
  std::string profile_json;
  bool perf_report = false;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mode=", 0) == 0) a.mode = arg.substr(7);
    else if (arg.rfind("--scale=", 0) == 0) a.scale = arg.substr(8);
    else if (arg.rfind("--budget=", 0) == 0) a.budget = std::stod(arg.substr(9));
    else if (arg.rfind("--time-limit=", 0) == 0) a.budget = std::stod(arg.substr(13));  // deprecated alias
    else if (arg.rfind("--max-nodes=", 0) == 0) a.max_nodes = std::stoll(arg.substr(12));
    else if (arg.rfind("--sweep=", 0) == 0) a.sweep = std::stoi(arg.substr(8));
    else if (arg == "--dot") a.dot = true;
    else if (arg.rfind("--write-lp=", 0) == 0) a.write_lp = arg.substr(11);
    else if (arg.rfind("--profile-json=", 0) == 0) a.profile_json = arg.substr(15);
    else if (arg == "--perf-report") a.perf_report = true;
    else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return a;
}

void report_links(const Problem& p, const Architecture& arch) {
  double worst_crit = 0.0;
  double worst_shed = 0.0;
  for (const auto& [load, prob] : link_fail_probs(p, arch)) {
    const NodeId id = p.arch_template().find(load);
    if (p.arch_template().node(id).has_tag("critical")) {
      worst_crit = std::max(worst_crit, prob);
    } else {
      worst_shed = std::max(worst_shed, prob);
    }
  }
  std::cout << "  exact link failure probability: critical <= " << worst_crit
            << ", sheddable <= " << worst_shed << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  EpnConfig cfg = args.scale == "paper"  ? EpnConfig{}
                  : args.scale == "tiny" ? tiny_config()
                                         : small_config();
  if (args.scale == "small") cfg.rectifiers_per_side = 3;
  // The compiled sweep solves the frozen matrix directly, so it needs the
  // eager (monolithic) reliability encoding.
  cfg.reliability_eager = (args.mode == "monolithic") || args.sweep > 0;

  std::cout << "=== Aircraft EPN exploration (" << args.mode << ", " << args.scale
            << " scale) ===\n";
  // Profiler must outlive the Problem (non-owning pointer); armed only when
  // the user asked for a trace so the disabled path stays zero-cost.
  obs::SpanProfiler profiler;
  obs::SpanProfiler* prof = args.profile_json.empty() ? nullptr : &profiler;
  auto problem = make_problem(cfg, prof);
  const milp::ModelStats stats = problem->model().stats();
  std::cout << "Spec: " << problem->num_patterns_applied() << " pattern instances\n"
            << "MILP: " << stats.num_vars << " variables, " << stats.num_constraints
            << " constraints, " << stats.standard_form_lines << " standard-form lines\n\n";

  milp::MilpOptions opts;
  opts.budget = milp::Budget::of_seconds(args.budget);
  if (args.max_nodes > 0) opts.max_nodes = args.max_nodes;

  if (!args.write_lp.empty()) {
    // Export the assembled MILP (objective included) without solving.
    problem->model().set_objective(problem->cost_expression(),
                                   milp::ObjectiveSense::Minimize);
    std::ofstream out(args.write_lp);
    if (!out) {
      std::cerr << "cannot write " << args.write_lp << "\n";
      return 2;
    }
    problem->model().write_lp(out);
    std::cout << "wrote " << args.write_lp << "\n";
    return 0;
  }

  // Shared epilogue for both modes: dump the Chrome trace and/or the
  // per-pattern attribution table, even when the solve came back infeasible
  // (the encode/presolve spans are still informative).
  auto write_observability = [&](const milp::Solution& sol) -> bool {
    if (prof != nullptr) {
      std::ofstream out(args.profile_json);
      if (!out) {
        std::cerr << "cannot write " << args.profile_json << "\n";
        return false;
      }
      prof->write_chrome_trace(out);
      const auto rep = prof->collect();
      std::cerr << "profile: " << rep.spans.size() << " spans (" << rep.dropped
                << " dropped) -> " << args.profile_json << "\n";
    }
    if (args.perf_report) {
      write_perf_report(std::cout, build_perf_report(*problem, sol));
    }
    return true;
  };

  if (args.sweep > 0) {
    // Compiled pipeline demo: encode once, then re-solve cost perturbations
    // as objective deltas with warm starts (docs/pipeline.md).
    const CompiledModel cm = compile(*problem);
    std::cout << "compiled: fingerprint " << std::hex << cm.fingerprint()
              << std::dec << ", encode " << cm.encode_seconds() << "s\n";
    SweepState state;
    ExplorationResult last;
    for (int i = 0; i < args.sweep; ++i) {
      Scenario sc;
      sc.name = "perturb-" + std::to_string(i);
      sc.edge_cost_scale = 1.0 + 0.02 * i;
      if (!cm.library().empty()) {
        sc.component_cost_scale[cm.library().at(0).name] = 1.0 + 0.05 * i;
      }
      ExplorationResult res = archex::solve(cm, sc, opts, &state);
      std::cout << "scenario " << sc.name << ": "
                << milp::to_string(res.solution.status) << ", cost "
                << res.solution.objective << ", "
                << (res.solution.warm_started ? "warm" : "cold") << ", "
                << res.solver_seconds << "s\n";
      last = std::move(res);
    }
    std::cout << "sweep: " << state.warm_solves << " warm, "
              << state.cold_solves << " cold\n"
              << "degradation: " << last.degradation_json() << "\n";
    if (!write_observability(last.solution)) return 2;
    return last.feasible() ? 0 : 1;
  }

  if (args.mode == "monolithic") {
    ExplorationResult res = problem->solve(opts);
    std::cout << "status: " << milp::to_string(res.solution.status) << ", solver time "
              << res.solver_seconds << "s, " << res.solution.nodes_explored << " nodes\n";
    res.print_degradation(std::cout);
    if (res.degraded()) {
      std::cout << "degradation: " << res.degradation_json() << "\n";
    }
    if (!write_observability(res.solution)) return 2;
    if (!res.feasible()) return 1;
    std::cout << "cost: " << res.architecture.cost << "\n";
    res.architecture.print(std::cout);
    report_links(*problem, res.architecture);
    res.print_timing(std::cout);
    if (args.dot) std::cout << res.architecture.to_dot();
  } else {
    EpnLazyResult res = solve_lazy_epn(*problem, cfg, opts);
    for (const EpnLazyIteration& it : res.iterations) {
      std::cout << "iteration " << it.index << ": cost " << it.cost << ", r = (" << it.worst_hv
                << ", " << it.worst_lv << "), " << it.stats.num_constraints
                << " constraints, " << it.stats.num_vars << " variables, "
                << it.solve_seconds << "s\n";
    }
    std::cout << (res.converged ? "converged" : "NOT converged") << "\n";
    res.final_result.print_degradation(std::cout);
    if (!write_observability(res.final_result.solution)) return 2;
    if (!res.final_result.feasible()) return 1;
    res.final_result.architecture.print(std::cout);
    report_links(*problem, res.final_result.architecture);
    res.final_result.print_timing(std::cout);
    if (args.dot) std::cout << res.final_result.architecture.to_dot();
  }
  return 0;
}
